"""Simulated heterogeneous cluster (substitute for the paper's lab).

A discrete-event simulation (:mod:`~repro.simcluster.desim`) of the
paper's exact 34-CPU inventory (:mod:`~repro.simcluster.machine`), driven
by experiment functions (:mod:`~repro.simcluster.experiment`) calibrated
from three of the paper's own measurements; everything else it produces —
the rest of Table 2, the static-balancing collapse at 8 workers, the
inflection points of Figure 20 — is prediction.  The paper's published
numbers live in :mod:`~repro.simcluster.paperdata` for side-by-side
comparison.
"""

from repro.simcluster.desim import EventQueue, FarmSimResult, simulate_farm
from repro.simcluster.experiment import (Calibration, DEFAULT_CALIBRATION,
                                         ExperimentRow, homogeneous_control,
                                         ideal_speed, ideal_time,
                                         run_parallel, sequential_times,
                                         speed_of, sweep_workers, table2_rows)
from repro.simcluster.machine import (Cpu, CpuClass, PAPER_CLASSES,
                                      homogeneous_inventory,
                                      paper_cpu_inventory,
                                      workers_fastest_first)
from repro.simcluster.paperdata import (BATCH, TABLE1, TABLE2, TASKS,
                                        Table1Row, Table2Row,
                                        table2_by_workers)

__all__ = [
    "EventQueue", "FarmSimResult", "simulate_farm",
    "Calibration", "DEFAULT_CALIBRATION", "ExperimentRow",
    "homogeneous_control", "ideal_speed", "ideal_time", "run_parallel",
    "sequential_times", "speed_of", "sweep_workers", "table2_rows",
    "Cpu", "CpuClass", "PAPER_CLASSES", "homogeneous_inventory",
    "paper_cpu_inventory", "workers_fastest_first",
    "BATCH", "TABLE1", "TABLE2", "TASKS", "Table1Row", "Table2Row",
    "table2_by_workers",
]
