"""The paper's published numbers, verbatim (Tables 1 and 2).

Kept in one place so tests, benchmarks, and EXPERIMENTS.md all compare
against identical ground truth.  Times in minutes; speeds normalized to a
1 GHz Pentium III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TABLE1", "Table1Row", "TABLE2", "Table2Row", "TASKS", "BATCH"]

#: the experiment's scale (section 5.2)
TASKS = 2048
BATCH = 32


@dataclass(frozen=True)
class Table1Row:
    cpu_class: str
    time_min: float
    #: None for class D, whose speed cell is unreadable in the paper text
    speed: Optional[float]
    description: str


TABLE1: List[Table1Row] = [
    Table1Row("A", 11.63, 1.93, "2.4 GHz Pentium 4"),
    Table1Row("B", 13.13, 1.71, "2.2 GHz Pentium 4"),
    Table1Row("C", 22.50, 1.00, "1.0 GHz Pentium III"),
    Table1Row("D", 22.78, None, "(cell unreadable in source; ~0.99)"),
    Table1Row("E", 28.14, 0.80, "8 x 700 MHz Pentium III Xeon"),
]


@dataclass(frozen=True)
class Table2Row:
    workers: int
    ideal_time: float
    ideal_speed: float
    static_time: float
    static_speed: float
    dynamic_time: float
    dynamic_speed: float


TABLE2: List[Table2Row] = [
    Table2Row(1, 11.63, 1.93, 12.15, 1.85, 12.39, 1.82),
    Table2Row(2, 6.17, 3.65, 6.93, 3.25, 6.57, 3.43),
    Table2Row(4, 3.18, 7.08, 3.55, 6.34, 3.44, 6.54),
    Table2Row(8, 1.70, 13.22, 3.03, 7.42, 1.87, 12.02),
    Table2Row(16, 1.06, 21.22, 1.63, 13.80, 1.20, 18.73),
    Table2Row(32, 0.63, 35.97, 1.00, 22.42, 0.76, 29.77),
]


def table2_by_workers() -> Dict[int, Table2Row]:
    return {row.workers: row for row in TABLE2}
