"""Task workload models for the simulated cluster.

The paper's experiment uses deliberately uniform tasks ("each task tested
32 even values of D"), but its dynamic-balancing argument also covers
"heterogeneous environments where the amount of work required by each
task may not be uniform".  This module generates non-uniform task-work
vectors so that claim can be quantified (the variance ablation
benchmark): even on *identical* CPUs, dynamic dispatch beats static once
task durations vary.

Also included: a competing-load model (the paper reports CPU time rather
than elapsed time precisely to dodge "other background processes") that
inflates per-CPU service times by a background factor.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.simcluster.desim import FarmSimResult, simulate_farm
from repro.simcluster.machine import Cpu, homogeneous_inventory

__all__ = ["uniform_works", "lognormal_works", "bimodal_works",
           "coefficient_of_variation", "variance_experiment",
           "background_load_speeds"]


def uniform_works(n_tasks: int, work: float) -> List[float]:
    return [work] * n_tasks


def lognormal_works(n_tasks: int, mean_work: float, cv: float,
                    seed: int = 0) -> List[float]:
    """Lognormal task durations with the requested mean and coefficient
    of variation (cv = stddev/mean); cv=0 degenerates to uniform."""
    if cv <= 0:
        return uniform_works(n_tasks, mean_work)
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean_work) - sigma2 / 2.0
    rng = random.Random(seed)
    return [rng.lognormvariate(mu, math.sqrt(sigma2)) for _ in range(n_tasks)]


def bimodal_works(n_tasks: int, short: float, long: float,
                  long_fraction: float = 0.1, seed: int = 0) -> List[float]:
    """Mostly-short tasks with occasional stragglers (the worst case for
    static assignment: one queue eats several stragglers)."""
    rng = random.Random(seed)
    return [long if rng.random() < long_fraction else short
            for _ in range(n_tasks)]


def coefficient_of_variation(works: Sequence[float]) -> float:
    n = len(works)
    if n == 0:
        return 0.0
    mean = sum(works) / n
    if mean == 0:
        return 0.0
    var = sum((w - mean) ** 2 for w in works) / n
    return math.sqrt(var) / mean


def variance_experiment(cv: float, n_workers: int = 8, n_tasks: int = 512,
                        mean_work: float = 1.0, seed: int = 0,
                        cpus: Optional[Sequence[Cpu]] = None) -> dict:
    """Static vs dynamic on identical CPUs with task-duration variance.

    Returns elapsed times and their ratio; ratio > 1 means dynamic wins.
    """
    cpus = list(cpus) if cpus is not None else homogeneous_inventory(n_workers)
    works = lognormal_works(n_tasks, mean_work, cv, seed=seed)
    static = simulate_farm(cpus, n_tasks, mean_work, mode="static",
                           task_works=works)
    dynamic = simulate_farm(cpus, n_tasks, mean_work, mode="dynamic",
                            task_works=works)
    return {
        "cv": cv,
        "static": static.elapsed,
        "dynamic": dynamic.elapsed,
        "ratio": static.elapsed / dynamic.elapsed if dynamic.elapsed else 1.0,
        "realized_cv": coefficient_of_variation(works),
    }


def background_load_speeds(cpus: Sequence[Cpu], load_fractions: Sequence[float]):
    """Effective speeds under competing load: a CPU donating fraction f of
    its cycles to background work runs our tasks at speed·(1−f).

    Returns (effective_speed_list) aligned with ``cpus`` — feed them into
    a custom inventory for "computers ... may have different competing
    workloads" experiments.
    """
    if len(cpus) != len(load_fractions):
        raise ValueError("one load fraction per CPU")
    out = []
    for cpu, f in zip(cpus, load_fractions):
        if not 0.0 <= f < 1.0:
            raise ValueError("load fraction must be in [0, 1)")
        out.append(cpu.speed * (1.0 - f))
    return out
