"""Experiment drivers regenerating the paper's evaluation (section 5.2).

Calibration (all derived from the paper's own numbers, documented in
EXPERIMENTS.md):

* **work per task** — Table 1's class-C sequential run: 22.50 minutes for
  2048 tasks on a speed-1.00 CPU → 22.50/2048 C-minutes per task;
* **per-task overhead** — Table 2's 1-worker dynamic row: 12.39 measured
  vs 11.63 ideal → 0.76 min over 2048 tasks of serialization + network
  cost (the paper: "no more than 6% to 7% for this example");
* **per-worker startup** — Table 2's 32-worker dynamic row after removing
  per-task overhead: ≈0.0033 min per worker of sequential process
  distribution ("this startup overhead increases as the number of
  workers increases and accounts for virtually the entire difference
  between the ideal case and the dynamically load balanced case").

With these three constants fixed, every other cell of Table 2 and both
figures are *predictions* of the simulator, not fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simcluster.desim import FarmSimResult, simulate_farm
from repro.simcluster.machine import (Cpu, PAPER_CLASSES, homogeneous_inventory,
                                      paper_cpu_inventory, workers_fastest_first)
from repro.simcluster.paperdata import BATCH, TABLE1, TASKS

__all__ = [
    "Calibration", "DEFAULT_CALIBRATION", "ideal_time", "ideal_speed",
    "sequential_times", "run_parallel", "ExperimentRow", "sweep_workers",
    "table2_rows", "speed_of", "homogeneous_control",
]

#: the class-C normalization constant (minutes) from Table 1
C_SEQUENTIAL_MIN = 22.50


@dataclass(frozen=True)
class Calibration:
    """The three model constants (minutes)."""

    n_tasks: int = TASKS
    batch: int = BATCH
    #: work per task in C-minutes (speed-1.0 CPU minutes)
    work_per_task: float = C_SEQUENTIAL_MIN / TASKS
    #: serialization + network cost per task (not speed-scaled)
    per_task_overhead: float = (12.39 - 11.63) / TASKS
    #: sequential worker-process distribution cost per worker
    startup_per_worker: float = 0.0033


DEFAULT_CALIBRATION = Calibration()


def speed_of(elapsed_min: float) -> float:
    """Normalized speed: how many 1 GHz P-IIIs this run was worth."""
    return C_SEQUENTIAL_MIN / elapsed_min


def ideal_speed(n_workers: int) -> float:
    """"The speed is simply the sum of the speeds for all of the CPUs in
    use for a particular run."""
    return sum(cpu.speed for cpu in workers_fastest_first(n_workers))


def ideal_time(n_workers: int) -> float:
    """"the time is scaled from the execution time for a class C CPU
    using this computed ideal speed."""
    return C_SEQUENTIAL_MIN / ideal_speed(n_workers)


def sequential_times(calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> List[dict]:
    """Regenerate Table 1: simulated sequential run on one CPU per class.

    The sequential baseline invokes tasks directly (no process network →
    no per-task overhead, no startup).
    """
    rows = []
    paper = {r.cpu_class: r for r in TABLE1}
    for cls in PAPER_CLASSES:
        time_min = calibration.n_tasks * calibration.work_per_task / cls.speed
        rows.append({
            "class": cls.name,
            "speed": cls.speed,
            "description": cls.description,
            "time_model": time_min,
            "time_paper": paper[cls.name].time_min,
        })
    return rows


def run_parallel(n_workers: int, mode: str,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 cpus: Optional[Sequence[Cpu]] = None) -> FarmSimResult:
    """One simulated parallel run on the paper's worker allocation."""
    cpus = cpus if cpus is not None else workers_fastest_first(n_workers)
    return simulate_farm(
        cpus, calibration.n_tasks, calibration.work_per_task, mode=mode,
        per_task_overhead=calibration.per_task_overhead,
        startup_per_worker=calibration.startup_per_worker)


@dataclass
class ExperimentRow:
    """One line of the regenerated Table 2 / Figures 19–20."""

    workers: int
    ideal_time: float
    ideal_speed: float
    static_time: float
    static_speed: float
    dynamic_time: float
    dynamic_speed: float
    static_tasks_per_worker: List[int]
    dynamic_tasks_per_worker: List[int]


def sweep_workers(worker_counts: Sequence[int],
                  calibration: Calibration = DEFAULT_CALIBRATION
                  ) -> List[ExperimentRow]:
    """Run static + dynamic simulations for each worker count."""
    rows = []
    for w in worker_counts:
        static = run_parallel(w, "static", calibration)
        dynamic = run_parallel(w, "dynamic", calibration)
        rows.append(ExperimentRow(
            workers=w,
            ideal_time=ideal_time(w), ideal_speed=ideal_speed(w),
            static_time=static.elapsed, static_speed=speed_of(static.elapsed),
            dynamic_time=dynamic.elapsed,
            dynamic_speed=speed_of(dynamic.elapsed),
            static_tasks_per_worker=static.tasks_per_worker,
            dynamic_tasks_per_worker=dynamic.tasks_per_worker))
    return rows


def table2_rows(calibration: Calibration = DEFAULT_CALIBRATION
                ) -> List[ExperimentRow]:
    """The six worker counts the paper tabulates."""
    return sweep_workers([1, 2, 4, 8, 16, 32], calibration)


def homogeneous_control(n_workers: int = 8,
                        calibration: Calibration = DEFAULT_CALIBRATION
                        ) -> Dict[str, float]:
    """Ablation: on identical CPUs, static and dynamic should tie.

    Returns elapsed minutes for both modes on n identical class-C CPUs.
    """
    cpus = homogeneous_inventory(n_workers)
    static = simulate_farm(cpus, calibration.n_tasks, calibration.work_per_task,
                           mode="static",
                           per_task_overhead=calibration.per_task_overhead,
                           startup_per_worker=calibration.startup_per_worker)
    dynamic = simulate_farm(cpus, calibration.n_tasks, calibration.work_per_task,
                            mode="dynamic",
                            per_task_overhead=calibration.per_task_overhead,
                            startup_per_worker=calibration.startup_per_worker)
    return {"static": static.elapsed, "dynamic": dynamic.elapsed}
