"""Discrete-event simulator for task farms on heterogeneous CPUs.

The real experiment needs a 2003 computer lab; this simulator substitutes
for it (see DESIGN.md, substitutions).  It is an ordinary event-queue DES:
entities are a producer/dispatcher, N worker CPUs, and a collector.  Two
dispatch disciplines mirror the paper's compositions:

* ``static``  — task k is pre-assigned to worker ``k mod N`` (the Scatter
  of Figure 16; channel buffering lets workers proceed independently, so
  the makespan is governed by the slowest worker's queue);
* ``dynamic`` — each completion releases the next task to the worker that
  finished (the Direct/indexed-merge of Figure 17).

Cost model (calibrated in :mod:`repro.simcluster.experiment`):

* a task's service time on CPU c = ``work / c.speed + per_task_overhead``
  (the overhead term is serialization + network, *not* CPU-speed-scaled);
* worker w may not start before ``w_index × startup_per_worker`` — the
  sequential distribution of worker processes to servers, the paper's
  "startup overhead increases as the number of workers increases ... and
  accounts for virtually the entire difference between the ideal case and
  the dynamically load balanced case".
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.simcluster.machine import Cpu

__all__ = ["FarmSimResult", "simulate_farm", "EventQueue"]


class EventQueue:
    """A tiny reusable event queue (time-ordered callbacks)."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule into the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def run(self, until: Optional[float] = None) -> float:
        while self._heap:
            when, _, callback = heapq.heappop(self._heap)
            if until is not None and when > until:
                heapq.heappush(self._heap, (when, 0, callback))
                return self.now
            self.now = when
            callback()
        return self.now


@dataclass
class FarmSimResult:
    """Outcome of one simulated farm run."""

    mode: str
    n_workers: int
    #: minutes from t=0 to the last result's collection
    elapsed: float
    #: tasks each worker processed
    tasks_per_worker: List[int]
    #: completion time of each worker's last task
    worker_finish: List[float]
    #: total busy time per worker (for utilization)
    worker_busy: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> List[float]:
        if not self.worker_busy or self.elapsed == 0:
            return []
        return [b / self.elapsed for b in self.worker_busy]


def simulate_farm(cpus: Sequence[Cpu], n_tasks: int, work_per_task: float,
                  mode: str = "dynamic", per_task_overhead: float = 0.0,
                  startup_per_worker: float = 0.0,
                  task_works: Optional[Sequence[float]] = None) -> FarmSimResult:
    """Simulate ``n_tasks`` uniform (or per-task ``task_works``) tasks.

    All times share one unit (the experiment module uses minutes).
    Returns elapsed time and per-worker accounting.
    """
    if mode not in ("static", "dynamic"):
        raise ValueError("mode must be 'static' or 'dynamic'")
    n = len(cpus)
    works = list(task_works) if task_works is not None else [work_per_task] * n_tasks
    if len(works) != n_tasks:
        raise ValueError("task_works length must equal n_tasks")

    queue = EventQueue()
    tasks_done = [0] * n
    busy = [0.0] * n
    finish = [0.0] * n
    completed = 0
    last_completion = 0.0

    def service_time(worker: int, task_index: int) -> float:
        return works[task_index] / cpus[worker].speed + per_task_overhead

    if mode == "static":
        # Pre-assigned round-robin queues; worker w starts after its
        # (sequential) startup and burns through its queue.
        assignments: List[List[int]] = [[] for _ in range(n)]
        for k in range(n_tasks):
            assignments[k % n].append(k)

        def start_worker(w: int) -> None:
            def run_next(queue_pos: int = 0) -> None:
                nonlocal completed, last_completion
                if queue_pos >= len(assignments[w]):
                    return
                task = assignments[w][queue_pos]
                st = service_time(w, task)
                busy[w] += st
                done_at = queue.now + st

                def complete() -> None:
                    nonlocal completed, last_completion
                    completed += 1
                    finish[w] = queue.now
                    last_completion = max(last_completion, queue.now)
                    run_next(queue_pos + 1)

                queue.schedule(done_at, complete)

            run_next()

        for w in range(n):
            queue.schedule(startup_per_worker * (w + 1),
                           (lambda w=w: start_worker(w)))
    else:
        # On-demand: a completion hands the finishing worker the next task.
        next_task = 0

        def dispatch(w: int) -> None:
            nonlocal next_task
            if next_task >= n_tasks:
                return
            task = next_task
            next_task += 1
            tasks_done[w] += 1
            st = service_time(w, task)
            busy[w] += st

            def complete() -> None:
                nonlocal completed, last_completion
                completed += 1
                finish[w] = queue.now
                last_completion = max(last_completion, queue.now)
                dispatch(w)

            queue.schedule(queue.now + st, complete)

        for w in range(n):
            queue.schedule(startup_per_worker * (w + 1),
                           (lambda w=w: dispatch(w)))

    queue.run()
    if mode == "static":
        tasks_counted = [len([k for k in range(n_tasks) if k % n == w])
                         for w in range(n)]
    else:
        tasks_counted = tasks_done
    return FarmSimResult(mode=mode, n_workers=n, elapsed=last_completion,
                         tasks_per_worker=tasks_counted, worker_finish=finish,
                         worker_busy=busy)
