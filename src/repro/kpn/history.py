"""Channel-history capture: observe the object Kahn's theorem talks about.

Determinacy (paper §2) is a statement about "the history of data elements
produced on the communication channels" — *all* channels, not just the
ones a sink happens to watch.  This module captures those histories from
a live network so they can be compared, channel by channel, against the
least fixed point of the compiled equations:

    net = Network(); ...build...
    capture = HistoryCapture(net, codecs={"ch-0": "long", ...})  # or infer
    net.run()
    histories = capture.decode()   # {channel name: tuple of elements}

Byte histories are recorded losslessly in the buffers (a flag set before
the run); decoding applies each channel's codec.  ``infer_codecs`` pulls
per-channel codecs from the producing process where the standard library
exposes them (the ``codec`` attribute convention).
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Tuple

from repro.kpn.network import Network
from repro.kpn.process import CompositeProcess

__all__ = ["HistoryCapture", "decode_bytes", "infer_codecs"]


class _BytesSource:
    """Minimal InputStream over captured bytes (for codec decoding)."""

    def __init__(self, data: bytes) -> None:
        self._buf = io.BytesIO(data)
        self._len = len(data)

    def read(self, n: int) -> bytes:
        return self._buf.read(n)

    def read_exactly(self, n: int) -> bytes:
        data = self._buf.read(n)
        if len(data) != n:
            from repro.errors import EndOfStreamError

            raise EndOfStreamError("history ended mid-element")
        return data

    def exhausted(self) -> bool:
        return self._buf.tell() >= self._len


def decode_bytes(data: bytes, codec) -> Tuple:
    """Decode a full byte history with a codec; trailing partial elements
    are impossible for intact histories and raise if present."""
    from repro.processes.codecs import get_codec

    codec = get_codec(codec)
    source = _BytesSource(data)
    out = []
    while not source.exhausted():
        out.append(codec.read(source))
    return tuple(out)


def infer_codecs(network: Network) -> Dict[str, object]:
    """Per-channel codec, taken from each channel's *producer* process.

    Relies on the library convention that typed processes expose their
    element codec as ``.codec`` (and ``.out_codec`` when output framing
    differs) and track their endpoints.  Byte-level processes (Cons,
    Duplicate, Identity) forward their *input* channel's codec, resolved
    iteratively so chains of byte-level processes propagate.
    """
    from repro.processes.codecs import Codec

    producers: Dict[str, object] = {}
    byte_level: Dict[str, str] = {}  # out channel -> in channel (copy deps)
    pending = list(network.processes)
    leaves = []
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            pending.extend(p.processes)
        else:
            leaves.append(p)
    for p in leaves:
        out_codec = getattr(p, "out_codec", None) or getattr(p, "codec", None)
        out_names = [s.channel.name for s in p.output_streams
                     if getattr(s, "channel", None) is not None]
        in_names = [s.channel.name for s in p.input_streams
                    if getattr(s, "channel", None) is not None]
        for name in out_names:
            if isinstance(out_codec, Codec):
                producers[name] = out_codec
            elif in_names:
                byte_level[name] = in_names[0]
    # propagate through byte-level chains (bounded: acyclic dependency or
    # give up after |channels| rounds)
    for _ in range(len(byte_level) + 1):
        progressed = False
        for out_name, in_name in list(byte_level.items()):
            if out_name not in producers and in_name in producers:
                producers[out_name] = producers[in_name]
                progressed = True
        if not progressed:
            break
    return producers


class HistoryCapture:
    """Turn on byte-history recording for every channel of a network.

    Create *before* ``net.run()`` (existing channels are armed now; ones
    created later by reconfiguration are armed on :meth:`refresh`).
    """

    def __init__(self, network: Network,
                 codecs: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.codecs = dict(codecs) if codecs else None
        self._armed: set[str] = set()
        self.refresh()

    def refresh(self) -> None:
        with self.network._lock:
            channels = list(self.network.channels)
        for ch in channels:
            if ch.name not in self._armed:
                ch.buffer.record_history(True)
                self._armed.add(ch.name)

    def raw(self) -> Dict[str, bytes]:
        with self.network._lock:
            channels = list(self.network.channels)
        return {ch.name: ch.buffer.history_bytes() for ch in channels}

    def decode(self) -> Dict[str, Tuple]:
        """Decoded per-channel element histories.

        Channels with no known codec are skipped (their raw bytes remain
        available via :meth:`raw`).
        """
        codecs = self.codecs if self.codecs is not None \
            else infer_codecs(self.network)
        out: Dict[str, Tuple] = {}
        for name, data in self.raw().items():
            codec = codecs.get(name)
            if codec is None:
                continue
            out[name] = decode_bytes(data, codec)
        return out
