"""Layered stream classes (paper Figure 3).

The paper implements channels as a stack of stream objects::

    Channel
      ChannelOutputStream            ChannelInputStream
        SequenceOutputStream           BlockingInputStream
          LocalOutputStream              SequenceInputStream
            (shared pipe buffer)           LocalInputStream
                                              (shared pipe buffer)

Only the *lowest* layer moves bytes; it can be swapped between local
(shared-memory) and remote (socket) implementations without the layers
above — or the processes using them — noticing.  This module provides the
abstract stream interfaces, the local implementations backed by
:class:`~repro.kpn.buffers.BoundedByteBuffer`, the blocking-read enforcer,
and the sequence streams that make mid-execution swapping and channel
splicing possible.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.errors import ChannelClosedError, EndOfStreamError
from repro.kpn.buffers import BoundedByteBuffer

__all__ = [
    "InputStream",
    "OutputStream",
    "LocalInputStream",
    "LocalOutputStream",
    "BlockingInputStream",
    "SequenceInputStream",
    "SequenceOutputStream",
]


class InputStream:
    """Abstract byte source.

    ``read(n)`` may return *fewer* than ``n`` bytes (like
    ``java.io.InputStream``) and returns ``b""`` at end of stream.  Layers
    that need exact-length reads wrap a :class:`BlockingInputStream` on
    top, which converts short reads into blocking loops — the property
    Kahn's model requires (section 3.1: "read operations on channels
    *must* block if no data is available").
    """

    def read(self, max_bytes: int) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def available(self) -> int:
        """Bytes readable without blocking (0 if unknown)."""
        return 0

    def at_eof(self) -> bool:
        """True if end of stream has definitely been reached."""
        return False


class OutputStream:
    """Abstract byte sink with blocking writes (section 3.5)."""

    def write(self, data: bytes) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered bytes downstream.  Local pipes are unbuffered."""

    def close(self) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# local (shared-memory) implementations
# ---------------------------------------------------------------------------

class LocalInputStream(InputStream):
    """Read side of an in-memory pipe (``java.io.PipedInputStream``)."""

    def __init__(self, buffer: BoundedByteBuffer) -> None:
        self.buffer = buffer

    def read(self, max_bytes: int) -> bytes:
        return self.buffer.read(max_bytes)

    def close(self) -> None:
        self.buffer.close_read()

    def available(self) -> int:
        return self.buffer.available()

    def at_eof(self) -> bool:
        return self.buffer.at_eof()


class LocalOutputStream(OutputStream):
    """Write side of an in-memory pipe (``java.io.PipedOutputStream``)."""

    def __init__(self, buffer: BoundedByteBuffer) -> None:
        self.buffer = buffer

    def write(self, data: bytes) -> None:
        self.buffer.write(data)

    def close(self) -> None:
        self.buffer.close_write()


# ---------------------------------------------------------------------------
# blocking-read enforcement
# ---------------------------------------------------------------------------

class BlockingInputStream(InputStream):
    """Enforces Kahn blocking reads over a possibly-short-reading source.

    ``java.io.InputStream`` "allows non-blocking read operations. When
    reading an array of bytes, the operation may complete early, returning
    fewer bytes than were requested.  Our BlockingInputStream class
    enforces blocking reads."  ``read_exactly`` loops until the requested
    byte count has been accumulated, raising
    :class:`~repro.errors.EndOfStreamError` if the stream ends first
    (including mid-element, which indicates a protocol error upstream).
    """

    def __init__(self, source: InputStream) -> None:
        self.source = source

    def read(self, max_bytes: int) -> bytes:
        return self.source.read(max_bytes)

    def read_exactly(self, n: int) -> bytes:
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self.source.read(remaining)
            if not chunk:
                if parts:
                    raise EndOfStreamError(
                        f"stream ended mid-element: wanted {n} bytes, "
                        f"got {n - remaining}")
                raise EndOfStreamError("end of stream")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def close(self) -> None:
        self.source.close()

    def available(self) -> int:
        return self.source.available()

    def at_eof(self) -> bool:
        return self.source.at_eof()


# ---------------------------------------------------------------------------
# sequence streams: splicing and mid-execution swapping
# ---------------------------------------------------------------------------

class SequenceInputStream(InputStream):
    """Reads a sequence of underlying streams, in order, as one stream.

    This is the mechanism behind both

    * **channel splicing** during self-reconfiguration (paper Figure 10):
      when a process removes itself from the graph, the input stream of
      its *input* channel is appended here, so the consumer first drains
      everything the removed process produced and then continues with the
      upstream data "without interruption"; and

    * **transport swapping** during migration: a socket-backed stream can
      be appended so the consumer switches from local to remote bytes in
      FIFO order.

    End of stream is reported only when the *last* queued stream ends.
    Appending after the final EOF has been observed is an error — callers
    must splice before closing the stream currently being consumed (the
    self-removing Cons does exactly this).
    """

    def __init__(self, first: Optional[InputStream] = None) -> None:
        self._lock = threading.RLock()
        self._streams: list[InputStream] = [first] if first is not None else []
        self._closed = False
        self._finished = False  # saw EOF on the final stream

    def append(self, stream: InputStream) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("append on closed SequenceInputStream")
            if self._finished:
                raise ChannelClosedError(
                    "append after end of stream already observed")
            self._streams.append(stream)

    @property
    def current(self) -> Optional[InputStream]:
        with self._lock:
            return self._streams[0] if self._streams else None

    def read(self, max_bytes: int) -> bytes:
        # The read itself happens outside the lock: blocking in the
        # underlying stream while holding our lock would prevent append().
        while True:
            with self._lock:
                if self._closed:
                    raise ChannelClosedError("read on closed SequenceInputStream")
                if not self._streams:
                    self._finished = True
                    return b""
                current = self._streams[0]
            chunk = current.read(max_bytes)
            if chunk:
                return chunk
            # current stream exhausted: advance (if it is still the head —
            # a concurrent close may have cleared the list).
            with self._lock:
                if self._streams and self._streams[0] is current:
                    self._streams.pop(0)
                if not self._streams:
                    self._finished = True
                    return b""

    def close(self) -> None:
        with self._lock:
            streams = list(self._streams)
            self._streams.clear()
            self._closed = True
        for s in streams:
            try:
                s.close()
            except Exception:
                pass

    def available(self) -> int:
        with self._lock:
            return sum(s.available() for s in self._streams)

    def at_eof(self) -> bool:
        with self._lock:
            if self._finished:
                return True
            return all(s.at_eof() for s in self._streams) if self._streams else False


class SequenceOutputStream(OutputStream):
    """A switchable output target preserving byte order.

    ``switch_to`` replaces the underlying sink; bytes written before the
    switch were delivered to the old sink, bytes after go to the new one,
    so FIFO channel order is preserved as long as the old sink's bytes are
    delivered ahead of the new sink's (the migration machinery arranges
    exactly that with a drain-then-forward pump).
    """

    def __init__(self, target: OutputStream) -> None:
        self._lock = threading.RLock()
        self._target = target
        self._closed = False

    @property
    def current(self) -> OutputStream:
        with self._lock:
            return self._target

    def switch_to(self, new_target: OutputStream, close_old: bool = False) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("switch_to on closed SequenceOutputStream")
            old = self._target
            self._target = new_target
        if close_old and old is not new_target:
            try:
                old.close()
            except Exception:
                pass

    def write(self, data: bytes) -> None:
        # Snapshot the target outside the write so a blocked write does not
        # hold our lock (a switch then applies to the *next* write).
        with self._lock:
            if self._closed:
                raise ChannelClosedError("write on closed SequenceOutputStream")
            target = self._target
        target.write(data)

    def flush(self) -> None:
        with self._lock:
            target = self._target
        target.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            target = self._target
        target.close()


def concatenated(streams: Iterable[InputStream]) -> SequenceInputStream:
    """Convenience: a SequenceInputStream over ``streams`` in order."""
    seq = SequenceInputStream()
    for s in streams:
        seq.append(s)
    return seq
