"""Layered stream classes (paper Figure 3).

The paper implements channels as a stack of stream objects::

    Channel
      ChannelOutputStream            ChannelInputStream
        SequenceOutputStream           BlockingInputStream
          LocalOutputStream              SequenceInputStream
            (shared pipe buffer)           LocalInputStream
                                              (shared pipe buffer)

Only the *lowest* layer moves bytes; it can be swapped between local
(shared-memory) and remote (socket) implementations without the layers
above — or the processes using them — noticing.  This module provides the
abstract stream interfaces, the local implementations backed by
:class:`~repro.kpn.buffers.BoundedByteBuffer`, the blocking-read enforcer,
and the sequence streams that make mid-execution swapping and channel
splicing possible.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.errors import ChannelClosedError, EndOfStreamError
from repro.kpn.buffers import BoundedByteBuffer

__all__ = [
    "InputStream",
    "OutputStream",
    "LocalInputStream",
    "LocalOutputStream",
    "BlockingInputStream",
    "SequenceInputStream",
    "SequenceOutputStream",
]


class InputStream:
    """Abstract byte source.

    ``read(n)`` may return *fewer* than ``n`` bytes (like
    ``java.io.InputStream``) and returns ``b""`` at end of stream.  Layers
    that need exact-length reads wrap a :class:`BlockingInputStream` on
    top, which converts short reads into blocking loops — the property
    Kahn's model requires (section 3.1: "read operations on channels
    *must* block if no data is available").
    """

    def read(self, max_bytes: int) -> bytes:
        raise NotImplementedError

    def readinto(self, target) -> int:
        """Blocking read into a writable bytes-like; returns the count
        (0 only at end of stream).  The default adapts :meth:`read`; local
        streams override it to copy straight out of the ring storage.
        """
        view = memoryview(target).cast("B")
        chunk = self.read(len(view))
        view[:len(chunk)] = chunk
        return len(chunk)

    def read_view(self, max_bytes: int) -> memoryview:
        """Blocking read returning an *owned* memoryview (empty at EOF).

        The view's storage belongs to the caller — later stream operations
        never mutate it.  The default wraps :meth:`read`; local streams
        override it to hand out the channel's ring storage itself when a
        drain takes everything buffered (zero copies).  Frame parsers
        (:class:`~repro.kpn.objects.ObjectInputStream` in buffered mode)
        unpickle straight out of these views.
        """
        return memoryview(self.read(max_bytes))

    def close(self) -> None:
        raise NotImplementedError

    def available(self) -> int:
        """Bytes readable without blocking (0 if unknown)."""
        return 0

    def at_eof(self) -> bool:
        """True if end of stream has definitely been reached."""
        return False


class OutputStream:
    """Abstract byte sink with blocking writes (section 3.5)."""

    def write(self, data: bytes) -> None:
        raise NotImplementedError

    def write_vectored(self, chunks) -> None:
        """Write several bytes-like chunks as one operation.

        The default concatenates and calls :meth:`write`; sinks that can
        do better (local pipes take their lock once for the whole batch)
        override it.  Byte-stream semantics are identical to writing the
        chunks one after another.
        """
        self.write(b"".join(bytes(c) if not isinstance(c, (bytes, bytearray))
                            else c for c in chunks))

    def flush(self) -> None:
        """Push buffered bytes downstream.  Local pipes are unbuffered."""

    def close(self) -> None:
        raise NotImplementedError

    def abort(self) -> None:
        """Close this sink marking the end of stream as a cascade abort.

        A process whose own output was closed under it (BrokenChannelError
        / ChannelClosedError) aborts its remaining outputs instead of
        closing them: consumers drain what was delivered, then observe
        :class:`~repro.errors.BrokenChannelError` rather than a clean EOF
        — so EOF-tolerant merges cannot mistake a timing-dependent
        shutdown cut for source exhaustion.  Sinks without an abort
        distinction fall back to a plain close.
        """
        self.close()


# ---------------------------------------------------------------------------
# local (shared-memory) implementations
# ---------------------------------------------------------------------------

class LocalInputStream(InputStream):
    """Read side of an in-memory pipe (``java.io.PipedInputStream``)."""

    def __init__(self, buffer: BoundedByteBuffer) -> None:
        self.buffer = buffer

    def read(self, max_bytes: int) -> bytes:
        return self.buffer.read(max_bytes)

    def readinto(self, target) -> int:
        return self.buffer.readinto(target)

    def read_view(self, max_bytes: int) -> memoryview:
        return self.buffer.drain_up_to(max_bytes)

    def close(self) -> None:
        self.buffer.close_read()

    def available(self) -> int:
        return self.buffer.available()

    def at_eof(self) -> bool:
        return self.buffer.at_eof()


class LocalOutputStream(OutputStream):
    """Write side of an in-memory pipe (``java.io.PipedOutputStream``)."""

    def __init__(self, buffer: BoundedByteBuffer) -> None:
        self.buffer = buffer

    def write(self, data: bytes) -> None:
        self.buffer.write(data)

    def write_vectored(self, chunks) -> None:
        self.buffer.write_vectored(chunks)

    def close(self) -> None:
        self.buffer.close_write()

    def abort(self) -> None:
        self.buffer.close_write(aborted=True)


# ---------------------------------------------------------------------------
# blocking-read enforcement
# ---------------------------------------------------------------------------

class BlockingInputStream(InputStream):
    """Enforces Kahn blocking reads over a possibly-short-reading source.

    ``java.io.InputStream`` "allows non-blocking read operations. When
    reading an array of bytes, the operation may complete early, returning
    fewer bytes than were requested.  Our BlockingInputStream class
    enforces blocking reads."  ``read_exactly`` loops until the requested
    byte count has been accumulated, raising
    :class:`~repro.errors.EndOfStreamError` if the stream ends first
    (including mid-element, which indicates a protocol error upstream).
    """

    def __init__(self, source: InputStream) -> None:
        self.source = source

    def read(self, max_bytes: int) -> bytes:
        return self.source.read(max_bytes)

    def readinto(self, target) -> int:
        return self.source.readinto(target)

    def read_view(self, max_bytes: int) -> memoryview:
        return self.source.read_view(max_bytes)

    def read_exactly(self, n: int) -> bytes:
        if n <= 0:
            return b""
        # Fill one preallocated buffer via readinto: no per-chunk bytes
        # objects and no join, however many blocking reads it takes.
        out = bytearray(n)
        view = memoryview(out)
        filled = 0
        while filled < n:
            got = self.source.readinto(view[filled:])
            if got == 0:
                if filled:
                    raise EndOfStreamError(
                        f"stream ended mid-element: wanted {n} bytes, "
                        f"got {filled}")
                raise EndOfStreamError("end of stream")
            filled += got
        view.release()
        return bytes(out)

    def close(self) -> None:
        self.source.close()

    def available(self) -> int:
        return self.source.available()

    def at_eof(self) -> bool:
        return self.source.at_eof()


# ---------------------------------------------------------------------------
# sequence streams: splicing and mid-execution swapping
# ---------------------------------------------------------------------------

class SequenceInputStream(InputStream):
    """Reads a sequence of underlying streams, in order, as one stream.

    This is the mechanism behind both

    * **channel splicing** during self-reconfiguration (paper Figure 10):
      when a process removes itself from the graph, the input stream of
      its *input* channel is appended here, so the consumer first drains
      everything the removed process produced and then continues with the
      upstream data "without interruption"; and

    * **transport swapping** during migration: a socket-backed stream can
      be appended so the consumer switches from local to remote bytes in
      FIFO order.

    End of stream is reported only when the *last* queued stream ends.
    Appending after the final EOF has been observed is an error — callers
    must splice before closing the stream currently being consumed (the
    self-removing Cons does exactly this).
    """

    def __init__(self, first: Optional[InputStream] = None) -> None:
        self._lock = threading.RLock()
        self._streams: list[InputStream] = [first] if first is not None else []
        self._closed = False
        self._finished = False  # saw EOF on the final stream

    def append(self, stream: InputStream) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("append on closed SequenceInputStream")
            if self._finished:
                raise ChannelClosedError(
                    "append after end of stream already observed")
            self._streams.append(stream)

    def replace_head(self, stream: InputStream) -> None:
        """Swap the stream currently being consumed for ``stream``.

        The graph compiler uses this to put a fused-pipe transport in
        front of the consumer while keeping the Channel endpoint (and
        any streams spliced behind it) intact.  Only valid before
        consumption starts or between whole elements — the compiler
        checks the buffer is empty before rewiring.
        """
        with self._lock:
            if self._closed:
                raise ChannelClosedError(
                    "replace_head on closed SequenceInputStream")
            if self._finished:
                raise ChannelClosedError(
                    "replace_head after end of stream already observed")
            if self._streams:
                self._streams[0] = stream
            else:
                self._streams.append(stream)

    @property
    def current(self) -> Optional[InputStream]:
        with self._lock:
            return self._streams[0] if self._streams else None

    def read(self, max_bytes: int) -> bytes:
        # The read itself happens outside the lock: blocking in the
        # underlying stream while holding our lock would prevent append().
        while True:
            with self._lock:
                if self._closed:
                    raise ChannelClosedError("read on closed SequenceInputStream")
                if not self._streams:
                    self._finished = True
                    return b""
                current = self._streams[0]
            chunk = current.read(max_bytes)
            if chunk:
                return chunk
            # current stream exhausted: advance (if it is still the head —
            # a concurrent close may have cleared the list).
            with self._lock:
                if self._streams and self._streams[0] is current:
                    self._streams.pop(0)
                if not self._streams:
                    self._finished = True
                    return b""

    def readinto(self, target) -> int:
        # Mirrors read(): blocking happens outside the lock, stream
        # advance under it, so splices stay possible mid-read.
        while True:
            with self._lock:
                if self._closed:
                    raise ChannelClosedError(
                        "read on closed SequenceInputStream")
                if not self._streams:
                    self._finished = True
                    return 0
                current = self._streams[0]
            got = current.readinto(target)
            if got:
                return got
            with self._lock:
                if self._streams and self._streams[0] is current:
                    self._streams.pop(0)
                if not self._streams:
                    self._finished = True
                    return 0

    def read_view(self, max_bytes: int) -> memoryview:
        # Same advance protocol again: a spliced-in stream takes over only
        # after the current one reports EOF (an empty view).
        while True:
            with self._lock:
                if self._closed:
                    raise ChannelClosedError(
                        "read on closed SequenceInputStream")
                if not self._streams:
                    self._finished = True
                    return memoryview(b"")
                current = self._streams[0]
            view = current.read_view(max_bytes)
            if len(view):
                return view
            with self._lock:
                if self._streams and self._streams[0] is current:
                    self._streams.pop(0)
                if not self._streams:
                    self._finished = True
                    return memoryview(b"")

    def close(self) -> None:
        with self._lock:
            streams = list(self._streams)
            self._streams.clear()
            self._closed = True
        for s in streams:
            try:
                s.close()
            except Exception:
                pass

    def available(self) -> int:
        with self._lock:
            return sum(s.available() for s in self._streams)

    def at_eof(self) -> bool:
        with self._lock:
            if self._finished:
                return True
            return all(s.at_eof() for s in self._streams) if self._streams else False


class SequenceOutputStream(OutputStream):
    """A switchable output target preserving byte order.

    ``switch_to`` replaces the underlying sink; bytes written before the
    switch were delivered to the old sink, bytes after go to the new one,
    so FIFO channel order is preserved as long as the old sink's bytes are
    delivered ahead of the new sink's (the migration machinery arranges
    exactly that with a drain-then-forward pump).
    """

    def __init__(self, target: OutputStream) -> None:
        self._lock = threading.RLock()
        self._target = target
        self._closed = False

    @property
    def current(self) -> OutputStream:
        with self._lock:
            return self._target

    def switch_to(self, new_target: OutputStream, close_old: bool = False) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("switch_to on closed SequenceOutputStream")
            old = self._target
            self._target = new_target
        if close_old and old is not new_target:
            try:
                old.close()
            except Exception:
                pass

    def write(self, data: bytes) -> None:
        # Snapshot the target outside the write so a blocked write does not
        # hold our lock (a switch then applies to the *next* write).
        with self._lock:
            if self._closed:
                raise ChannelClosedError("write on closed SequenceOutputStream")
            target = self._target
        target.write(data)

    def write_vectored(self, chunks) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("write on closed SequenceOutputStream")
            target = self._target
        target.write_vectored(chunks)

    def flush(self) -> None:
        with self._lock:
            target = self._target
        target.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            target = self._target
        target.close()

    def abort(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            target = self._target
        target.abort()


def concatenated(streams: Iterable[InputStream]) -> SequenceInputStream:
    """Convenience: a SequenceInputStream over ``streams`` in order."""
    seq = SequenceInputStream()
    for s in streams:
        seq.append(s)
    return seq
