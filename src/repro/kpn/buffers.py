"""Bounded byte buffers — the lowest layer of a channel.

The paper's channels (Figure 3) bottom out in ``java.io.PipedInputStream``
and ``PipedOutputStream``: a fixed-capacity byte pipe with blocking reads
and blocking writes.  :class:`BoundedByteBuffer` is our equivalent, built
on a ring buffer and a pair of condition variables, with three additions
the reproduction needs:

* **Two-sided close semantics** (paper section 3.4).  Closing the *read*
  side makes every subsequent write raise :class:`~repro.errors.BrokenChannelError`
  immediately; closing the *write* side lets the reader drain all buffered
  bytes and only then observe end of stream.  These two behaviours drive
  the paper's two cascading-termination modes.

* **Capacity growth while blocked** (paper section 3.5 / Parks' bounded
  scheduling).  :meth:`BoundedByteBuffer.grow` may be called by the
  scheduler while writer threads are blocked on a full buffer; they wake
  up and retry against the new capacity.

* **Blocking accounting.**  Every potentially-blocking operation reports
  entry/exit to an optional :class:`BlockAccounting` object so that a
  network-wide deadlock monitor can tell when *every* live process actor
  (OS thread or cooperative task) is blocked — the precondition for
  Parks' artificial-deadlock resolution.

* **Cooperative (async-backend) hooks.**  When the current thread is an
  event loop resuming a cooperative task (``Network(backend="async")``),
  a thread-local *async context* is installed and every consuming or
  blocking operation routes through it: instead of waiting on a condition
  variable, an operation that would block raises out of the task's step,
  the task parks on the buffer's waiter list (:meth:`async_park`) and is
  re-scheduled by whichever thread next changes the buffer state.  The
  non-blocking primitives (``try_read`` / ``try_readinto`` /
  ``try_write_part``) and the waiter lists below exist for that backend;
  the thread backend never touches them.

* **Abort-aware close.**  ``close_write(aborted=True)`` marks the end of
  stream as a *cascade* abort rather than a graceful exhaustion: readers
  still drain every buffered byte, but instead of then observing a clean
  EOF they get :class:`~repro.errors.BrokenChannelError`.  This keeps
  EOF-tolerant merges (OrderedMerge, Select) from interpreting a
  timing-dependent shutdown cascade as legitimate source exhaustion —
  the fix for the merge-tail nondeterminism the fusion equivalence suite
  used to exclude.

The buffer is multi-producer/multi-consumer safe, although Kahn networks
use it strictly single-producer/single-consumer.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import BrokenChannelError, ChannelClosedError
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = ["BlockAccounting", "BoundedByteBuffer", "DEFAULT_CAPACITY",
           "current_async_context", "set_async_context"]


class _AsyncTLS(threading.local):
    """Per-thread pointer to the active async execution context."""
    ctx = None


_ASYNC = _AsyncTLS()


def current_async_context():
    """The async context installed on this thread, or None (thread mode)."""
    return _ASYNC.ctx


def set_async_context(ctx) -> None:
    """Install (or clear, with None) this thread's async context.

    Called by the event loop around each task resume; everything else
    should treat the context as read-only.
    """
    _ASYNC.ctx = ctx

#: Default channel capacity in bytes.  Java's ``PipedInputStream`` default
#: is 1024 bytes; we match it so the paper's remark that "the default
#: buffer capacities ... are sufficient for many programs" carries over.
DEFAULT_CAPACITY = 1024


class BlockAccounting:
    """Callback interface used by the scheduler's deadlock monitor.

    A network installs one accounting object on all of its channel buffers.
    The default implementation counts blocked *actors* — OS threads in the
    thread backend, cooperative tasks in the async backend — and invokes
    an optional callback when the count changes, which is all the deadlock
    monitor needs.  Methods are invoked *while holding the buffer's lock*,
    so implementations must not call back into the buffer.
    """

    def __init__(self, on_change: Optional[Callable[[], None]] = None) -> None:
        self._lock = threading.Lock()
        #: actor (thread or task) -> (buffer, "read"|"write") while blocked
        self._blocked: dict[object, tuple["BoundedByteBuffer", str]] = {}
        #: bumped on every enter/exit so the monitor can detect churn
        #: between two observations (stability check)
        self.generation = 0
        self._on_change = on_change

    # -- updates (called by buffers) -------------------------------------
    def enter_read_wait(self, buffer: "BoundedByteBuffer") -> None:
        self._enter(buffer, "read")

    def exit_read_wait(self, buffer: "BoundedByteBuffer") -> None:
        self._exit()

    def enter_write_wait(self, buffer: "BoundedByteBuffer") -> None:
        self._enter(buffer, "write")

    def exit_write_wait(self, buffer: "BoundedByteBuffer") -> None:
        self._exit()

    def _enter(self, buffer: "BoundedByteBuffer", mode: str,
               actor: object = None) -> None:
        with self._lock:
            key = actor if actor is not None else threading.current_thread()
            self._blocked[key] = (buffer, mode)
            self.generation += 1
        self._notify()

    def _exit(self, actor: object = None) -> None:
        with self._lock:
            key = actor if actor is not None else threading.current_thread()
            self._blocked.pop(key, None)
            self.generation += 1
        self._notify()

    def _notify(self) -> None:
        if self._on_change is not None:
            self._on_change()

    # -- queries (used by the deadlock monitor) --------------------------
    def snapshot(self) -> dict[object, tuple["BoundedByteBuffer", str]]:
        """Consistent copy of the blocked-actor map."""
        with self._lock:
            return dict(self._blocked)

    @property
    def read_blocked(self) -> int:
        with self._lock:
            return sum(1 for _, m in self._blocked.values() if m == "read")

    @property
    def write_blocked(self) -> int:
        with self._lock:
            return sum(1 for _, m in self._blocked.values() if m == "write")

    @property
    def total_blocked(self) -> int:
        with self._lock:
            return len(self._blocked)


class BoundedByteBuffer:
    """A blocking, bounded, growable FIFO of bytes.

    Parameters
    ----------
    capacity:
        Maximum number of buffered bytes before writes block.  Must be
        at least 1.
    name:
        Diagnostic label used in deadlock reports.
    accounting:
        Optional :class:`BlockAccounting` receiving blocked-thread events.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        name: str = "",
        accounting: Optional[BlockAccounting] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        # ring-ish storage: consumed bytes are skipped via _read_pos and
        # compacted lazily — `del data[:n]` per read would make a read
        # O(buffered bytes) and large-buffer workloads quadratic.
        self._data = bytearray()
        self._read_pos = 0
        self._capacity = capacity
        self._read_closed = False
        self._write_closed = False
        #: close_write(aborted=True) was used: drained readers observe a
        #: BrokenChannelError instead of a clean end of stream
        self._write_aborted = False
        # cooperative tasks parked on this buffer (async backend); woken —
        # popped and rescheduled — at every site that notifies the matching
        # condition variable.  Empty (and free) under the thread backend.
        self._async_readers: list = []
        self._async_writers: list = []
        self.name = name
        self.accounting = accounting
        #: total bytes ever written / read (for stats & tests)
        self.total_written = 0
        self.total_read = 0
        #: most bytes ever buffered at once — the capacity advisor's
        #: evidence that a channel actually used its headroom.  Maintained
        #: unconditionally: one compare per write is cheaper than gating.
        self._high_watermark = 0
        #: when enabled (see :meth:`record_history`), every byte ever
        #: written is appended here — the channel's full history, the
        #: object Kahn's theorem actually quantifies over.
        self.history: Optional[bytearray] = None
        # listeners called (outside the lock is unsafe; we call under lock,
        # listeners must be lock-free, e.g. threading.Event.set) whenever
        # data becomes available or the stream reaches EOF.  Used by
        # Turnstile's wait-on-any-input and by the deadlock monitor.
        self._listeners: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def high_watermark(self) -> int:
        """Most bytes ever buffered at once."""
        return self._high_watermark

    def _buffered(self) -> int:
        """Bytes currently readable (caller holds the lock)."""
        return len(self._data) - self._read_pos

    def _compact(self) -> None:
        """Drop consumed bytes when they dominate the storage (held lock).

        Amortized O(1): each byte is moved at most once per compaction,
        and compaction only fires when consumed bytes exceed both a fixed
        floor and half the storage.
        """
        if self._read_pos > 4096 and self._read_pos * 2 >= len(self._data):
            del self._data[: self._read_pos]
            self._read_pos = 0

    def available(self) -> int:
        """Number of bytes that can be read without blocking."""
        with self._lock:
            return self._buffered()

    def free_space(self) -> int:
        """Number of bytes that can be written without blocking."""
        with self._lock:
            return max(0, self._capacity - self._buffered())

    @property
    def read_closed(self) -> bool:
        return self._read_closed

    @property
    def write_closed(self) -> bool:
        return self._write_closed

    def is_full(self) -> bool:
        with self._lock:
            return self._buffered() >= self._capacity

    def at_eof(self) -> bool:
        """True if a read would raise/return empty: writer closed & drained."""
        with self._lock:
            return self._write_closed and self._buffered() == 0

    def readable_or_eof(self) -> bool:
        """True if a read would *not* block (data ready or EOF reached)."""
        with self._lock:
            return (self._buffered() > 0 or self._write_closed
                    or self._read_closed)

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run whenever readability may change.

        The callback runs with the buffer lock held; it must be cheap and
        must not touch the buffer (setting a ``threading.Event`` is the
        intended use).
        """
        with self._lock:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

    def _fire_listeners(self) -> None:
        for cb in self._listeners:
            cb()

    # ------------------------------------------------------------------
    # cooperative-task (async backend) support
    # ------------------------------------------------------------------
    def _check_aborted_eof(self) -> None:
        """Raise instead of signalling EOF when the writer aborted (held lock)."""
        if self._write_aborted:
            raise BrokenChannelError(
                f"writer of channel {self.name!r} aborted")

    def _wake_async_readers(self) -> None:
        """Reschedule tasks parked for data (caller holds the lock)."""
        if self._async_readers:
            waiters = self._async_readers
            self._async_readers = []
            acct = self.accounting
            for w in waiters:
                if acct is not None:
                    acct._exit(actor=w)
                w.unparked(self, "read")

    def _wake_async_writers(self) -> None:
        """Reschedule tasks parked for space (caller holds the lock)."""
        if self._async_writers:
            waiters = self._async_writers
            self._async_writers = []
            acct = self.accounting
            for w in waiters:
                if acct is not None:
                    acct._exit(actor=w)
                w.unparked(self, "write")

    def async_park(self, mode: str, waiter) -> bool:
        """Park a cooperative task on this buffer, or refuse.

        Atomically re-checks that the operation would still block; a False
        return means the buffer state changed since the task observed it
        and the task should simply retry (classic lost-wakeup guard).  On
        True the waiter is registered, blocked-actor accounting is entered
        (the waiter object *is* the actor key) and a ``block.read`` /
        ``block.write`` telemetry span opens — the waiter's ``unparked``
        callback closes it.  ``waiter`` must expose ``unparked(buffer,
        mode)`` (reschedule, called with the buffer lock held) and
        ``name``.
        """
        with self._lock:
            if mode == "read":
                if (self._buffered() > 0 or self._write_closed
                        or self._read_closed):
                    return False
                self._async_readers.append(waiter)
            else:
                if (self._buffered() < self._capacity or self._read_closed
                        or self._write_closed):
                    return False
                self._async_writers.append(waiter)
            acct = self.accounting
            if acct is not None:
                acct._enter(self, mode, actor=waiter)
            if _telemetry.enabled:
                _telemetry.begin(f"block.{mode}", category="kpn.block",
                                 channel=self.name,
                                 process=getattr(waiter, "name", ""),
                                 **({"capacity": self._capacity}
                                    if mode == "write" else {}))
                _telemetry.inc(f"kpn.channel.{mode}_blocks", 1,
                               channel=self.name)
            return True

    def try_read(self, max_bytes: int):
        """Non-blocking :meth:`read`: bytes, ``b""`` at EOF, None if it
        would block."""
        if max_bytes <= 0:
            return b""
        with self._lock:
            if self._read_closed:
                raise ChannelClosedError(
                    f"read on closed input of channel {self.name!r}")
            if self._buffered() > 0:
                return self._take_locked(max_bytes, steal=False).obj
            if self._write_closed:
                self._check_aborted_eof()
                return b""
            return None

    def try_readinto(self, target) -> Optional[int]:
        """Non-blocking :meth:`readinto`: count, 0 at EOF, None if it
        would block."""
        out = memoryview(target).cast("B")
        if len(out) == 0:
            return 0
        with self._lock:
            if self._read_closed:
                raise ChannelClosedError(
                    f"read on closed input of channel {self.name!r}")
            buffered = self._buffered()
            if buffered > 0:
                take = min(len(out), buffered)
                end = self._read_pos + take
                with memoryview(self._data) as src:
                    out[:take] = src[self._read_pos:end]
                self._read_pos = end
                self._compact()
                self.total_read += take
                if _telemetry.enabled:
                    _telemetry.inc("kpn.channel.reads", 1, channel=self.name)
                    _telemetry.inc("kpn.channel.bytes_read", take,
                                   channel=self.name)
                self._not_full.notify_all()
                self._wake_async_writers()
                return take
            if self._write_closed:
                self._check_aborted_eof()
                return 0
            return None

    def try_write_part(self, view: memoryview, offset: int) -> int:
        """Deliver as much of ``view[offset:]`` as fits, without blocking.

        Returns the new offset; an offset short of ``len(view)`` means the
        buffer filled up and the caller should park.  Raises exactly like
        :meth:`write` on closed ends.  Bytes delivered before a park are
        *final* — the async backend journals the offset and resumes here,
        which is what makes a re-executed step idempotent at the channel.
        """
        with self._lock:
            while offset < len(view):
                if self._write_closed:
                    raise ChannelClosedError(
                        f"write on closed output of channel {self.name!r}")
                if self._read_closed:
                    raise BrokenChannelError(
                        f"reader closed channel {self.name!r}")
                space = self._capacity - self._buffered()
                if space <= 0:
                    return offset
                chunk = view[offset:offset + space]
                self._data.extend(chunk)
                if self.history is not None:
                    self.history.extend(chunk)
                offset += len(chunk)
                self.total_written += len(chunk)
                buffered = self._buffered()
                if buffered > self._high_watermark:
                    self._high_watermark = buffered
                if _telemetry.enabled:
                    _telemetry.inc("kpn.channel.bytes_written", len(chunk),
                                   channel=self.name)
                self._not_empty.notify_all()
                self._wake_async_readers()
                self._fire_listeners()
            return offset

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def write(self, data) -> None:
        """Append ``data`` (any bytes-like), blocking while space lacks.

        Writes larger than the capacity are delivered in chunks, exactly
        like Java piped streams; interleaving with other writers is then
        possible, but Kahn networks have a single writer per channel.

        Raises
        ------
        BrokenChannelError
            If the read side is (or becomes, while blocked) closed.
        ChannelClosedError
            If this write side has already been closed.
        """
        if not data:
            return
        ctx = _ASYNC.ctx
        if ctx is not None:
            ctx.write(self, data)
            return
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.writes", 1, channel=self.name)
        with self._lock:
            self._write_locked(memoryview(data).cast("B"))

    def write_vectored(self, chunks) -> None:
        """Append several bytes-like chunks under one lock acquisition.

        Equivalent to ``write(chunk) for chunk in chunks`` (same chunking,
        blocking, and close semantics — single-writer channels observe no
        difference) but the producer pays the lock/condvar round trip once
        per batch instead of once per chunk.  Used by the buffered object
        stream and the receiver pump to cut per-message overhead.
        """
        views = [memoryview(c).cast("B") for c in chunks if len(c)]
        if not views:
            return
        ctx = _ASYNC.ctx
        if ctx is not None:
            for view in views:
                ctx.write(self, view)
            return
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.writes", 1, channel=self.name)
        with self._lock:
            for view in views:
                self._write_locked(view)

    def write_donate(self, data: bytearray) -> None:
        """Append ``data``, adopting its storage outright when possible.

        Behaves exactly like :meth:`write`, but when the ring is empty and
        ``data`` fits within capacity the bytearray itself becomes the
        ring storage — no copy.  The caller must not touch ``data`` after
        this call.  Used by the receiver pump, which allocates a fresh
        buffer per received frame anyway; with a fast consumer the ring is
        empty on nearly every delivery, so frames flow through untouched.
        """
        if not data:
            return
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.writes", 1, channel=self.name)
        with self._lock:
            if (isinstance(data, bytearray) and self._buffered() == 0
                    and len(data) <= self._capacity
                    and not self._write_closed and not self._read_closed
                    and self.history is None):
                self._data = data
                self._read_pos = 0
                self.total_written += len(data)
                if len(data) > self._high_watermark:
                    self._high_watermark = len(data)
                if _telemetry.enabled:
                    _telemetry.inc("kpn.channel.bytes_written", len(data),
                                   channel=self.name)
                self._not_empty.notify_all()
                self._wake_async_readers()
                self._fire_listeners()
                return
            self._write_locked(memoryview(data).cast("B"))

    def _write_locked(self, view: memoryview) -> None:
        """Deliver one chunk, blocking on capacity (caller holds the lock)."""
        offset = 0
        while offset < len(view):
            if self._write_closed:
                raise ChannelClosedError(
                    f"write on closed output of channel {self.name!r}")
            if self._read_closed:
                raise BrokenChannelError(
                    f"reader closed channel {self.name!r}")
            space = self._capacity - self._buffered()
            if space <= 0:
                self._block_on_full()
                continue
            chunk = view[offset:offset + space]
            self._data.extend(chunk)
            if self.history is not None:
                self.history.extend(chunk)
            offset += len(chunk)
            self.total_written += len(chunk)
            buffered = self._buffered()
            if buffered > self._high_watermark:
                self._high_watermark = buffered
            if _telemetry.enabled:
                _telemetry.inc("kpn.channel.bytes_written", len(chunk),
                               channel=self.name)
            self._not_empty.notify_all()
            self._wake_async_readers()
            self._fire_listeners()

    def _block_on_full(self) -> None:
        acct = self.accounting
        if acct is not None:
            acct.enter_write_wait(self)
        traced = _telemetry.enabled
        if traced:
            # `process` makes block spans joinable with process lifecycle
            # spans and channel.grow instants without relying on thread
            # names (network-spawned threads carry the process name; pump
            # and test threads may not)
            _telemetry.begin("block.write", category="kpn.block",
                             channel=self.name, capacity=self._capacity,
                             process=threading.current_thread().name)
            _telemetry.inc("kpn.channel.write_blocks", 1, channel=self.name)
        try:
            self._not_full.wait()
        finally:
            if traced:
                _telemetry.end("block.write", category="kpn.block")
            if acct is not None:
                acct.exit_write_wait(self)

    def read(self, max_bytes: int) -> bytes:
        """Remove and return 1..max_bytes bytes, blocking while empty.

        Returns ``b""`` only at end of stream (write side closed and all
        data drained) — mirroring Java's ``read`` returning ``-1``.

        Raises
        ------
        ChannelClosedError
            If the read side has already been closed.
        """
        if max_bytes <= 0:
            return b""
        ctx = _ASYNC.ctx
        if ctx is not None:
            return ctx.read(self, max_bytes)
        with self._lock:
            while True:
                if self._read_closed:
                    raise ChannelClosedError(
                        f"read on closed input of channel {self.name!r}")
                if self._buffered() > 0:
                    # steal=False means the view wraps a fresh bytes
                    # object; .obj hands it back without another copy.
                    return self._take_locked(max_bytes, steal=False).obj
                if self._write_closed:
                    self._check_aborted_eof()
                    return b""
                self._block_on_empty()

    def _take_locked(self, max_bytes: int, steal: bool = True) -> memoryview:
        """Consume up to ``max_bytes`` buffered bytes (caller holds the
        lock, buffered > 0) and return them as a memoryview.

        With ``steal``, a request covering everything buffered takes the
        internal storage itself — handed over as a view and replaced with
        a fresh bytearray — so no bytes are copied and later writes cannot
        mutate what the caller holds.  Callers that copy the result anyway
        (:meth:`read`) pass ``steal=False`` to keep the storage (and its
        already-grown allocation) in place.  Partial takes copy once.
        """
        buffered = self._buffered()
        take = min(max_bytes, buffered)
        if steal and take == buffered:
            stolen = self._data
            start = self._read_pos
            self._data = bytearray()
            self._read_pos = 0
            view = memoryview(stolen)[start:] if start else memoryview(stolen)
        else:
            end = self._read_pos + take
            with memoryview(self._data) as src:
                view = memoryview(bytes(src[self._read_pos:end]))
            self._read_pos = end
            self._compact()
        self.total_read += take
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.reads", 1, channel=self.name)
            _telemetry.inc("kpn.channel.bytes_read", take, channel=self.name)
        self._not_full.notify_all()
        self._wake_async_writers()
        return view

    def drain_up_to(self, max_bytes: int) -> memoryview:
        """Blocking zero-copy read: like :meth:`read` but returns a
        memoryview instead of bytes.

        The returned view owns its storage (the ring's bytearray is stolen
        or the bytes are copied out), so it stays valid across later
        writes, reads, ``grow`` and close calls.  An *empty* view means
        end of stream, mirroring ``read`` returning ``b""``.  This is the
        sender pump's hot path: the view goes straight into a
        scatter-gather ``sendmsg`` with no intermediate concatenation.
        """
        if max_bytes <= 0:
            return memoryview(b"")
        ctx = _ASYNC.ctx
        if ctx is not None:
            return memoryview(ctx.read(self, max_bytes))
        with self._lock:
            while True:
                if self._read_closed:
                    raise ChannelClosedError(
                        f"read on closed input of channel {self.name!r}")
                if self._buffered() > 0:
                    return self._take_locked(max_bytes)
                if self._write_closed:
                    self._check_aborted_eof()
                    return memoryview(b"")
                self._block_on_empty()

    def read_available(self, max_bytes: int) -> memoryview:
        """Non-blocking companion of :meth:`drain_up_to`.

        Returns whatever is buffered right now (up to ``max_bytes``) as a
        zero-copy view, or an empty view when nothing is buffered — it
        never blocks and never signals EOF.  The coalescing sender pump
        uses it to top up a frame with bytes that are already waiting.
        """
        if max_bytes <= 0:
            return memoryview(b"")
        with self._lock:
            if self._read_closed:
                raise ChannelClosedError(
                    f"read on closed input of channel {self.name!r}")
            if self._buffered() == 0:
                return memoryview(b"")
            return self._take_locked(max_bytes)

    def readinto(self, target) -> int:
        """Blocking read into a caller-provided writable bytes-like.

        Copies 1..len(target) bytes directly from the ring storage into
        ``target`` and returns the count — 0 only at end of stream.  Saves
        the intermediate bytes object a ``read()`` would allocate; exact-
        length readers (:meth:`BlockingInputStream.read_exactly`) fill one
        preallocated buffer instead of joining chunk lists.
        """
        out = memoryview(target).cast("B")
        if len(out) == 0:
            return 0
        ctx = _ASYNC.ctx
        if ctx is not None:
            return ctx.readinto(self, out)
        with self._lock:
            while True:
                if self._read_closed:
                    raise ChannelClosedError(
                        f"read on closed input of channel {self.name!r}")
                buffered = self._buffered()
                if buffered > 0:
                    take = min(len(out), buffered)
                    end = self._read_pos + take
                    with memoryview(self._data) as src:
                        out[:take] = src[self._read_pos:end]
                    self._read_pos = end
                    self._compact()
                    self.total_read += take
                    if _telemetry.enabled:
                        _telemetry.inc("kpn.channel.reads", 1,
                                       channel=self.name)
                        _telemetry.inc("kpn.channel.bytes_read", take,
                                       channel=self.name)
                    self._not_full.notify_all()
                    self._wake_async_writers()
                    return take
                if self._write_closed:
                    self._check_aborted_eof()
                    return 0
                self._block_on_empty()

    def _block_on_empty(self) -> None:
        acct = self.accounting
        if acct is not None:
            acct.enter_read_wait(self)
        traced = _telemetry.enabled
        if traced:
            _telemetry.begin("block.read", category="kpn.block",
                             channel=self.name,
                             process=threading.current_thread().name)
            _telemetry.inc("kpn.channel.read_blocks", 1, channel=self.name)
        try:
            self._not_empty.wait()
        finally:
            if traced:
                _telemetry.end("block.read", category="kpn.block")
            if acct is not None:
                acct.exit_read_wait(self)

    def drain(self) -> bytes:
        """Non-blocking: remove and return everything currently buffered.

        Used during migration to preserve unconsumed data (paper section
        3.3: "Care must be taken to preserve any unconsumed data residing
        in the channels at the time that reconfiguration takes place").
        """
        with self._lock:
            chunk = bytes(self._data[self._read_pos:])
            self._data.clear()
            self._read_pos = 0
            self.total_read += len(chunk)
            self._not_full.notify_all()
            self._wake_async_writers()
            return chunk

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def close_write(self, aborted: bool = False) -> None:
        """Close the producer side; readers drain then see end of stream.

        With ``aborted=True`` the end of stream is a cascade abort: after
        draining, readers get :class:`BrokenChannelError` instead of a
        clean EOF.  A producer that terminates because its *own* output
        was closed under it uses this, so downstream EOF-tolerant merges
        die deterministically instead of pass-through-ing a
        timing-dependent tail.
        """
        with self._lock:
            if self._write_closed:
                return
            self._write_closed = True
            self._write_aborted = aborted
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._wake_async_readers()
            self._wake_async_writers()
            self._fire_listeners()

    def close_read(self) -> None:
        """Close the consumer side; subsequent/blocked writes break."""
        with self._lock:
            if self._read_closed:
                return
            self._read_closed = True
            self._data.clear()
            self._read_pos = 0
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._wake_async_readers()
            self._wake_async_writers()
            self._fire_listeners()

    def record_history(self, enable: bool = True) -> None:
        """Start (or stop) recording the complete byte history.

        Must be enabled before any writes for the history to be complete;
        the channel-history determinacy tests turn it on at construction.
        """
        with self._lock:
            if enable and self.history is None:
                # include currently-unread bytes so history is complete
                self.history = bytearray(self._data[self._read_pos:])
            elif not enable:
                self.history = None

    def history_bytes(self) -> bytes:
        """Everything ever written (empty if recording was off)."""
        with self._lock:
            return bytes(self.history) if self.history is not None else b""

    def record_bytes(self, data) -> None:
        """Append ``data`` to the history without buffering it.

        Used by the graph compiler's fused pipes: bytes that bypass the
        ring still show up in the channel history, so HistoryCapture
        sees the same stream fused and unfused.
        """
        ctx = _ASYNC.ctx
        if ctx is not None:
            # history is observable state: a replayed step must not append
            # the same bytes twice, so the async context journals this too
            ctx.record_bytes(self, data)
            return
        with self._lock:
            if self.history is not None:
                self.history += data

    def record_bytes_direct(self, data) -> None:
        """:meth:`record_bytes` without the async-context hook (the async
        context itself calls this once per *first* execution of an op)."""
        with self._lock:
            if self.history is not None:
                self.history += data

    def grow(self, new_capacity: int, process: str = "") -> None:
        """Enlarge the buffer, waking any writers blocked on a full buffer.

        Shrinking is rejected: it could strand already-buffered data above
        the bound and is never needed by Parks' algorithm, which only ever
        increases capacities.  ``process`` names the blocked writer the
        growth unblocks: the instant is emitted from the deadlock-monitor
        thread, so without an explicit arg it could not be joined with the
        process's block span.
        """
        with self._lock:
            if new_capacity < self._capacity:
                raise ValueError(
                    f"cannot shrink channel {self.name!r}: "
                    f"{self._capacity} -> {new_capacity}")
            old = self._capacity
            self._capacity = new_capacity
            self._not_full.notify_all()
            self._wake_async_writers()
        if _telemetry.enabled and new_capacity != old:
            _telemetry.instant("channel.grow", category="kpn.channel",
                               channel=self.name, old=old, new=new_capacity,
                               process=process)
            _telemetry.inc("kpn.channel.grow_events", 1, channel=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BoundedByteBuffer {self.name!r} {self._buffered()}/"
            f"{self._capacity}B rc={self._read_closed} wc={self._write_closed}>"
        )
