"""Execution tracing: observe a running network without perturbing it.

The paper's systems story (fairness from bounded buffers, overlap of
communication and computation, buffer growth under Parks scheduling) is
about *dynamics*; this module makes those dynamics measurable:

* :class:`Tracer` samples every channel's occupancy and the network's
  blocked-thread census on a fixed period (pure readers — no locks taken
  beyond the buffers' own, no channel semantics touched);
* the result is a :class:`TraceReport` with per-channel high-water marks,
  occupancy/blocked timelines, throughput figures, and capacity-growth
  events, exportable as JSON or a text summary.

Typical use::

    net = Network(); ...build...
    with Tracer(net, period=0.005) as tracer:
        net.run()
    print(tracer.report().summary())
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kpn.network import Network
from repro.telemetry.core import TELEMETRY as _telemetry, Event

__all__ = ["Tracer", "TraceReport", "ChannelTrace"]


@dataclass
class ChannelTrace:
    """Per-channel observations."""

    name: str
    capacity_initial: int
    capacity_final: int = 0
    high_water: int = 0
    total_bytes: int = 0
    #: (t, occupancy) samples
    occupancy: List[tuple] = field(default_factory=list)

    @property
    def grew(self) -> bool:
        return self.capacity_final > self.capacity_initial

    @property
    def peak_utilization(self) -> float:
        cap = max(self.capacity_final, 1)
        return self.high_water / cap


@dataclass
class TraceReport:
    """Everything a trace run collected."""

    duration: float
    samples: int
    channels: Dict[str, ChannelTrace]
    #: (t, read_blocked, write_blocked) census timeline
    blocked_timeline: List[tuple] = field(default_factory=list)
    growth_events: List[dict] = field(default_factory=list)

    def hottest_channels(self, n: int = 5) -> List[ChannelTrace]:
        return sorted(self.channels.values(),
                      key=lambda c: c.high_water, reverse=True)[:n]

    def total_bytes_moved(self) -> int:
        return sum(c.total_bytes for c in self.channels.values())

    def max_blocked(self) -> tuple:
        """Peak simultaneous (read-blocked, write-blocked) thread counts."""
        r = max((entry[1] for entry in self.blocked_timeline), default=0)
        w = max((entry[2] for entry in self.blocked_timeline), default=0)
        return r, w

    def summary(self) -> str:
        lines = [
            f"trace: {self.duration:.3f}s, {self.samples} samples, "
            f"{self.total_bytes_moved()} bytes moved, "
            f"{len(self.growth_events)} growths",
        ]
        r, w = self.max_blocked()
        lines.append(f"peak blocked threads: {r} reading, {w} writing")
        for ch in self.hottest_channels():
            grown = (f" (grew {ch.capacity_initial}->{ch.capacity_final})"
                     if ch.grew else "")
            lines.append(
                f"  {ch.name}: high-water {ch.high_water}B of "
                f"{ch.capacity_final}B{grown}, {ch.total_bytes}B through")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "duration": self.duration,
            "samples": self.samples,
            "growth_events": self.growth_events,
            "blocked_timeline": self.blocked_timeline,
            "channels": {
                name: {
                    "capacity_initial": c.capacity_initial,
                    "capacity_final": c.capacity_final,
                    "high_water": c.high_water,
                    "total_bytes": c.total_bytes,
                    "occupancy": c.occupancy,
                }
                for name, c in self.channels.items()
            },
        })


class Tracer:
    """Periodic sampler over a network's channels and accounting.

    Channels created *during* the run (self-reconfiguring graphs) are
    picked up automatically on the next sample.
    """

    def __init__(self, network: Network, period: float = 0.005,
                 keep_timelines: bool = True, max_samples: int = 100000) -> None:
        self.network = network
        self.period = period
        self.keep_timelines = keep_timelines
        self.max_samples = max_samples
        self._channels: Dict[str, ChannelTrace] = {}
        self._blocked: List[tuple] = []
        self._samples = 0
        self._t0 = 0.0
        self._elapsed = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: growth events collected off the telemetry bus (when enabled),
        #: replacing the monitor double-bookkeeping
        self._bus_growths: List[dict] = []
        self._bus_lock = threading.Lock()
        self._subscribed = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Tracer":
        self._t0 = time.monotonic()
        if _telemetry.enabled:
            # Event-bus mode: growth events arrive as channel.grow
            # instants; the sampling loop below still owns the occupancy
            # and blocked-census timelines (those are censuses, not
            # events).
            _telemetry.subscribe(self._on_event)
            self._subscribed = True
        self._thread = threading.Thread(target=self._run, name="tracer",
                                        daemon=True)
        self._thread.start()
        return self

    def _on_event(self, event: Event) -> None:
        if event.name == "channel.grow" and event.args:
            with self._bus_lock:
                self._bus_growths.append({
                    "channel": event.args.get("channel"),
                    "old": event.args.get("old"),
                    "new": event.args.get("new"),
                })

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._subscribed:
            _telemetry.unsubscribe(self._on_event)
            self._subscribed = False
        # Final sample *before* freezing the duration (it catches post-run
        # totals), so its timestamp cannot land past the reported duration
        # in to_json() timelines; _sample additionally clamps.
        self._sample()
        self._elapsed = time.monotonic() - self._t0

    def __enter__(self) -> "Tracer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set() and self._samples < self.max_samples:
            self._sample()
            self._stop.wait(self.period)

    def _sample(self) -> None:
        now = time.monotonic() - self._t0
        if self._elapsed:
            now = min(now, self._elapsed)
        self._samples += 1
        with self.network._lock:
            channels = list(self.network.channels)
        for ch in channels:
            trace = self._channels.get(ch.name)
            if trace is None:
                trace = ChannelTrace(ch.name, ch.capacity)
                self._channels[ch.name] = trace
            occupancy = ch.buffer.available()
            trace.high_water = max(trace.high_water, occupancy)
            trace.capacity_final = ch.capacity
            trace.total_bytes = ch.buffer.total_written
            if self.keep_timelines:
                trace.occupancy.append((round(now, 6), occupancy))
        acct = self.network.accounting
        if self.keep_timelines:
            self._blocked.append((round(now, 6), acct.read_blocked,
                                  acct.write_blocked))

    # -- results ------------------------------------------------------------
    def report(self) -> TraceReport:
        with self.network._lock:
            known = {ch.name for ch in self.network.channels}
        with self._bus_lock:
            # the bus is process-wide; keep only this network's channels
            growths = [g for g in self._bus_growths if g["channel"] in known]
        if not growths:
            # Telemetry was off during the run: fall back to the
            # monitor's own growth bookkeeping.
            growths = [
                {"channel": e.channel_name, "old": e.old_capacity,
                 "new": e.new_capacity}
                for e in (self.network.monitor.growth_events
                          if self.network.monitor else [])
            ]
        duration = self._elapsed or (time.monotonic() - self._t0)
        return TraceReport(duration=duration, samples=self._samples,
                           channels=dict(self._channels),
                           blocked_timeline=list(self._blocked),
                           growth_events=growths)
