"""Program-graph visualization: DOT and ASCII export.

The paper imagines "a visual front end ... for programming", generating
code from a drawn graph.  Going the other direction is immediately
useful: render a built network in Graphviz DOT (for papers, debugging,
documentation) or as an indented ASCII adjacency listing (for terminals
and tests).  Optionally annotates edges with trace data — capacity,
high-water mark, bytes moved — turning a :class:`~repro.kpn.tracing.TraceReport`
into a labelled dataflow diagram.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kpn.network import Network

__all__ = ["to_dot", "to_ascii"]

#: fill colors by coarse process role (matched on class-name fragments)
_ROLE_STYLES = {
    "source": ("#e3f2e1", ("Constant", "Sequence", "FromIterable", "Producer")),
    "sink": ("#fde9e7", ("Print", "Collect", "Discard", "Consumer")),
    "routing": ("#e7eefb", ("Scatter", "Gather", "Direct", "Turnstile",
                            "Select", "Guard", "ModuloRouter", "Duplicate")),
    "reconfig": ("#fdf3dc", ("Sift", "Cons")),
}


def _style_for(process_type: str) -> str:
    for color, fragments in _ROLE_STYLES.values():
        if any(process_type.startswith(f) for f in fragments):
            return color
    return "#f4f4f4"


def to_dot(network: Network, trace=None, title: Optional[str] = None) -> str:
    """Render the network as Graphviz DOT.

    ``trace`` (a TraceReport) adds per-edge annotations; remote-linked
    channels are drawn with dashed edges to a cloud node.
    """
    g = network.graph()
    lines = ["digraph kpn {",
             "  rankdir=LR;",
             "  node [shape=box, style=filled, fontname=\"Helvetica\"];"]
    if title:
        lines.append(f"  label=\"{title}\"; labelloc=top;")
    for node, data in g.nodes(data=True):
        ptype = data.get("process", "?")
        lines.append(
            f"  \"{node}\" [label=\"{node}\\n({ptype})\", "
            f"fillcolor=\"{_style_for(ptype)}\"];")
    for src, dst, data in g.edges(data=True):
        channel = data.get("channel", "")
        label = channel
        if trace is not None and channel in trace.channels:
            t = trace.channels[channel]
            label = (f"{channel}\\n{t.total_bytes}B, "
                     f"hw {t.high_water}/{t.capacity_final}")
        elif data.get("capacity"):
            label = f"{channel}\\ncap {data['capacity']}"
        lines.append(f"  \"{src}\" -> \"{dst}\" [label=\"{label}\"];")

    # remote links: dashed edges to/from a cloud placeholder
    remote = [ch for ch in network.channels
              if getattr(ch, "receiver_pump", None) is not None
              or getattr(ch, "sender_pump", None) is not None]
    if remote:
        lines.append("  \"(remote)\" [shape=ellipse, style=dashed, "
                     "fillcolor=white];")
        for ch in remote:
            if getattr(ch, "receiver_pump", None) is not None:
                lines.append(f"  \"(remote)\" -> \"{_reader_of(g, ch.name)}\" "
                             f"[style=dashed, label=\"{ch.name}\"];")
            else:
                lines.append(f"  \"{_writer_of(g, ch.name)}\" -> \"(remote)\" "
                             f"[style=dashed, label=\"{ch.name}\"];")
    lines.append("}")
    return "\n".join(lines)


def _reader_of(g, channel_name: str) -> str:
    for src, dst, data in g.edges(data=True):
        if data.get("channel") == channel_name:
            return dst
    # the reader isn't a graph edge (producer is remote): find by inputs
    return "(local reader)"


def _writer_of(g, channel_name: str) -> str:
    for src, dst, data in g.edges(data=True):
        if data.get("channel") == channel_name:
            return src
    return "(local writer)"


def to_ascii(network: Network, trace=None) -> str:
    """Terminal-friendly adjacency rendering."""
    g = network.graph()
    adjacency: Dict[str, list] = {}
    for src, dst, data in g.edges(data=True):
        adjacency.setdefault(src, []).append((dst, data.get("channel", "")))
    lines = [f"network {network.name!r}: {g.number_of_nodes()} processes, "
             f"{g.number_of_edges()} channels"]
    for node in sorted(g.nodes):
        ptype = g.nodes[node].get("process", "?")
        lines.append(f"  {node} ({ptype})")
        for dst, channel in sorted(adjacency.get(node, [])):
            extra = ""
            if trace is not None and channel in trace.channels:
                t = trace.channels[channel]
                extra = f"  [{t.total_bytes}B, hw {t.high_water}]"
            lines.append(f"    --{channel}--> {dst}{extra}")
    return "\n".join(lines)
