"""Static consistency checking for program graphs (paper section 3).

"It would not be impossible to enforce these restrictions, such as having
only a single producer and a single consumer process for each stream, but
this would incur some run-time overhead.  Alternatively, a visual front
end could be used ...  The responsibility for consistency checking could
be given to this visual front end, relieving the run-time system of this
burden."

We are that front end: :func:`check_network` validates a *built* network
before it starts, with zero run-time cost.  Checks:

* **single-producer / single-consumer** — no two processes track the same
  channel endpoint, and no process reads and writes the same channel
  (which would self-deadlock on capacity);
* **connectivity** — every channel has both a producer and a consumer
  among the network's processes (dangling ends stall or leak);
* **boundedness & deadlock proofs** — directed-cycle analysis with
  initial-token accounting (:mod:`repro.analysis.graphproofs`): cycles in
  which every hop blocks on an empty, token-free channel are reported as
  guaranteed deadlocks; graphs proved bounded (acyclic, or rate-balanced
  with every feedback loop carrying an initial token) get the blanket
  undirected-cycle warning downgraded to ``cycle-proved-bounded``;
* **termination plausibility** — a network whose sources and sinks are
  all unbounded is flagged as intentionally non-terminating (fine for
  signal processing, surprising in a test).

Violations come back as :class:`Issue` records; ``strict=True`` raises
:class:`GraphConsistencyError` on any *error*-severity issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kpn.network import Network
from repro.kpn.process import CompositeProcess, IterativeProcess, Process

__all__ = ["check_network", "Issue", "GraphConsistencyError"]


class GraphConsistencyError(ValueError):
    """Raised in strict mode when the graph violates KPN construction rules."""

    def __init__(self, issues: List["Issue"]) -> None:
        super().__init__("; ".join(str(i) for i in issues))
        self.issues = issues


@dataclass(frozen=True)
class Issue:
    """One finding.  severity ∈ {'error', 'warning', 'info'}."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}:{self.code}] {self.message}"


def _leaves(network: Network) -> List[Process]:
    out: List[Process] = []
    pending = list(network.processes)
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            pending.extend(p.processes)
        else:
            out.append(p)
    return out


def _composites(network: Network) -> List[CompositeProcess]:
    out: List[CompositeProcess] = []
    pending = list(network.processes)
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            out.append(p)
            pending.extend(p.processes)
    return out


def check_network(network: Network, strict: bool = False) -> List[Issue]:
    """Validate the graph; returns all findings (errors first).

    ``strict=True`` raises :class:`GraphConsistencyError` if any finding
    has error severity.
    """
    issues: List[Issue] = []
    leaves = _leaves(network)

    producers: Dict[str, List[str]] = {}
    consumers: Dict[str, List[str]] = {}
    for p in leaves:
        for s in p.output_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                producers.setdefault(ch.name, []).append(p.name)
        for s in p.input_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                consumers.setdefault(ch.name, []).append(p.name)

    # Boundary streams tracked on a CompositeProcess itself (rather than on
    # one of its members) still connect the channel: count the composite as
    # the endpoint owner, but only for channels no leaf already covers —
    # a composite re-tracking a member's stream is not a second producer.
    comp_producers: Dict[str, List[str]] = {}
    comp_consumers: Dict[str, List[str]] = {}
    for comp in _composites(network):
        for s in comp.output_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                comp_producers.setdefault(ch.name, []).append(comp.name)
        for s in comp.input_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                comp_consumers.setdefault(ch.name, []).append(comp.name)
    for name, owners in comp_producers.items():
        if name not in producers:
            producers[name] = owners
    for name, owners in comp_consumers.items():
        if name not in consumers:
            consumers[name] = owners

    # single producer / single consumer
    for name, owners in producers.items():
        if len(owners) > 1:
            issues.append(Issue("error", "multi-producer",
                                f"channel {name!r} written by {owners}"))
    for name, owners in consumers.items():
        if len(owners) > 1:
            issues.append(Issue("error", "multi-consumer",
                                f"channel {name!r} read by {owners}"))

    # self-loop through a single process
    for p in leaves:
        written = {getattr(s, "channel", None) and s.channel.name
                   for s in p.output_streams if getattr(s, "channel", None)}
        read = {getattr(s, "channel", None) and s.channel.name
                for s in p.input_streams if getattr(s, "channel", None)}
        overlap = written & read
        for name in overlap:
            issues.append(Issue("error", "self-loop",
                                f"{p.name} both reads and writes channel "
                                f"{name!r}; it will deadlock on itself"))

    # connectivity
    remote = {ch.name for ch in network.channels
              if getattr(ch, "receiver_pump", None) is not None
              or getattr(ch, "sender_pump", None) is not None}
    for ch in network.channels:
        has_p = ch.name in producers or ch.name in remote
        has_c = ch.name in consumers or ch.name in remote
        if not has_p and not has_c:
            issues.append(Issue("warning", "orphan-channel",
                                f"channel {ch.name!r} has no endpoints in "
                                "this network"))
        elif not has_p:
            issues.append(Issue("error", "no-producer",
                                f"channel {ch.name!r} is read by "
                                f"{consumers[ch.name]} but never written"))
        elif not has_c:
            issues.append(Issue("error", "no-consumer",
                                f"channel {ch.name!r} is written by "
                                f"{producers[ch.name]} but never read"))

    # boundedness risk, with directed-cycle + initial-token proofs where
    # the declared process contracts allow them
    proof = None
    try:
        from repro.analysis.graphproofs import prove_graph
        proof = prove_graph(network)
    except Exception:
        pass  # graph export can fail on exotic endpoint layering
    if proof is not None:
        for cycle in proof.proved_deadlocks:
            path = " -> ".join(cycle.processes + (cycle.processes[0],))
            issues.append(Issue(
                "error", "proved-deadlock",
                f"directed cycle {path} is a guaranteed deadlock: "
                f"{cycle.reason}"))
        if proof.has_undirected_cycle:
            if proof.bounded:
                issues.append(Issue(
                    "info", "cycle-proved-bounded",
                    "graph has an undirected cycle but is proved bounded: "
                    f"{proof.bounded_reason}"))
            elif network.monitor is None:
                issues.append(Issue(
                    "warning", "cycle-unbounded-monitorless",
                    "graph has an undirected cycle with no boundedness "
                    "proof and the deadlock monitor is disabled: bounded "
                    "channels may deadlock with no recovery (section 3.5)"))
            else:
                issues.append(Issue(
                    "info", "cycle",
                    "graph has an undirected cycle with no boundedness "
                    "proof; default capacities may need growth (handled by "
                    "the deadlock monitor)"))
    else:
        # proof unavailable: fall back to the blanket undirected-cycle flag
        try:
            if network.has_undirected_cycle():
                if network.monitor is None:
                    issues.append(Issue(
                        "warning", "cycle-unbounded-monitorless",
                        "graph has an undirected cycle and the deadlock "
                        "monitor is disabled: bounded channels may deadlock "
                        "with no recovery (section 3.5)"))
                else:
                    issues.append(Issue(
                        "info", "cycle",
                        "graph has an undirected cycle; default capacities "
                        "may need growth (handled by the deadlock monitor)"))
        except Exception:
            pass

    # termination plausibility
    bounded = any(isinstance(p, IterativeProcess) and p.iterations > 0
                  for p in leaves)
    data_bounded = any(type(p).__name__ in ("FromIterable", "Guard")
                       for p in leaves)
    if leaves and not bounded and not data_bounded:
        issues.append(Issue(
            "info", "non-terminating",
            "no process has an iteration limit or data-dependent stop; "
            "the network runs until externally stopped (fine for "
            "signal-processing-style programs)"))

    issues.sort(key=lambda i: {"error": 0, "warning": 1, "info": 2}[i.severity])
    if strict and any(i.severity == "error" for i in issues):
        raise GraphConsistencyError(
            [i for i in issues if i.severity == "error"])
    return issues
