"""Arbitrary-object I/O over byte channels (``java.io.Object*Stream`` analogue).

Objects are pickled and framed with a 4-byte big-endian length prefix so
they travel over the same byte channels as everything else, preserving the
paper's "all communication between processes takes the form of streams of
bytes" discipline.  The generic Producer/Worker/Consumer processes of
section 5.1 move :class:`~repro.parallel.tasks.Task` objects through these
streams.

A frame size cap guards against a corrupted or misaligned stream being
interpreted as a multi-gigabyte allocation.
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any

from repro.errors import ChannelError
from repro.kpn.data import DataInputStream, DataOutputStream
from repro.kpn.streams import InputStream, OutputStream

__all__ = ["ObjectInputStream", "ObjectOutputStream", "MAX_FRAME_BYTES"]

#: Upper bound on a single serialized object (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ObjectOutputStream:
    """Pickles objects into length-prefixed frames on an output stream."""

    def __init__(self, out: OutputStream, protocol: int = pickle.HIGHEST_PROTOCOL) -> None:
        self.out = out
        self.protocol = protocol

    def write_object(self, obj: Any) -> None:
        payload = pickle.dumps(obj, protocol=self.protocol)
        if len(payload) > MAX_FRAME_BYTES:
            raise ChannelError(
                f"object frame of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}")
        # Single write keeps the frame contiguous even if another layer
        # chunks it; readers reassemble by exact-length reads.
        self.out.write(_LEN.pack(len(payload)) + payload)

    def flush(self) -> None:
        self.out.flush()

    def close(self) -> None:
        self.out.close()


class ObjectInputStream:
    """Reads frames produced by :class:`ObjectOutputStream`."""

    def __init__(self, source: InputStream) -> None:
        self._data = DataInputStream(source)
        self.source = source

    def read_object(self) -> Any:
        header = self._data._exact(4)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(
                f"incoming frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
                " (corrupted or misaligned stream?)")
        payload = self._data._exact(length)
        return pickle.loads(payload)

    def close(self) -> None:
        self.source.close()


def dumps_framed(obj: Any, protocol: int = pickle.HIGHEST_PROTOCOL) -> bytes:
    """Serialize ``obj`` to a standalone length-prefixed frame (bytes)."""
    buf = io.BytesIO()

    class _Sink(OutputStream):
        def write(self, data: bytes) -> None:
            buf.write(data)

        def close(self) -> None:  # pragma: no cover - unused
            pass

    ObjectOutputStream(_Sink(), protocol).write_object(obj)
    return buf.getvalue()
