"""Arbitrary-object I/O over byte channels (``java.io.Object*Stream`` analogue).

Objects are pickled and framed with a 4-byte big-endian length prefix so
they travel over the same byte channels as everything else, preserving the
paper's "all communication between processes takes the form of streams of
bytes" discipline.  The generic Producer/Worker/Consumer processes of
section 5.1 move :class:`~repro.parallel.tasks.Task` objects through these
streams.

Both stream classes have an optional **buffered mode** (the analogue of
wrapping the paper's object streams in ``java.io.Buffered*Stream``):

* ``ObjectOutputStream(out, buffer_bytes=N)`` packs consecutive small
  frames into one channel write, so the producer pays the channel's
  lock/condvar round trip once per batch instead of once per object.
  Buffered frames become visible downstream at the next ``flush()``,
  when the batch exceeds ``N`` bytes, or at ``close()`` — byte order and
  framing are identical to the unbuffered stream.
* ``ObjectInputStream(source, buffer_bytes=N)`` slurps whatever the
  channel has ready (one lock acquisition) and parses as many frames as
  arrived, instead of doing two exact-length reads per object.

Blocking semantics survive buffering: a buffered read still blocks until
at least one whole object is available, exactly like the unbuffered one.

A frame size cap guards against a corrupted or misaligned stream being
interpreted as a multi-gigabyte allocation.
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any

from repro.errors import ChannelError, EndOfStreamError
from repro.kpn.data import DataInputStream
from repro.kpn.streams import InputStream, OutputStream

__all__ = ["ObjectInputStream", "ObjectOutputStream", "MAX_FRAME_BYTES"]

#: Upper bound on a single serialized object (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ObjectOutputStream:
    """Pickles objects into length-prefixed frames on an output stream.

    Parameters
    ----------
    out:
        The byte sink (usually a channel output endpoint).
    protocol:
        Pickle protocol for the frames.
    buffer_bytes:
        0 (default) writes each frame immediately; > 0 enables buffered
        mode — frames accumulate locally and are flushed downstream in
        batches of roughly this many bytes.
    """

    def __init__(self, out: OutputStream, protocol: int = pickle.HIGHEST_PROTOCOL,
                 buffer_bytes: int = 0) -> None:
        self.out = out
        self.protocol = protocol
        self.buffer_bytes = buffer_bytes
        self._pending = bytearray()

    def write_object(self, obj: Any) -> None:
        payload = pickle.dumps(obj, protocol=self.protocol)
        if len(payload) > MAX_FRAME_BYTES:
            raise ChannelError(
                f"object frame of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}")
        header = _LEN.pack(len(payload))
        if self.buffer_bytes > 0 and len(payload) < self.buffer_bytes:
            self._pending += header
            self._pending += payload
            if len(self._pending) >= self.buffer_bytes:
                self._flush_pending()
            return
        if self._pending:
            # large frame bypasses the batch: flush what's queued first so
            # byte order is preserved, then write the frame directly.
            self._flush_pending()
        # Unbuffered: one vectored write keeps the frame contiguous with
        # no header+payload concatenation; readers reassemble by
        # exact-length reads.
        write_vectored = getattr(self.out, "write_vectored", None)
        if write_vectored is not None:
            write_vectored((header, payload))
        else:
            self.out.write(header + payload)

    def _flush_pending(self) -> None:
        if self._pending:
            batch, self._pending = self._pending, bytearray()
            self.out.write(batch)

    def flush(self) -> None:
        self._flush_pending()
        self.out.flush()

    def close(self) -> None:
        self._flush_pending()
        self.out.close()


class ObjectInputStream:
    """Reads frames produced by :class:`ObjectOutputStream`.

    ``buffer_bytes > 0`` enables buffered mode: each blocking read pulls
    whatever the channel currently holds (at least ``buffer_bytes`` is
    requested per read) and subsequent objects are parsed straight out of
    the local batch with no further channel locking.
    """

    def __init__(self, source: InputStream, buffer_bytes: int = 0) -> None:
        self._data = DataInputStream(source)
        self.source = source
        self.buffer_bytes = buffer_bytes
        # fixed batch storage; [_pos, _end) is the unparsed range.  Twice
        # the batch size so any sub-batch frame plus its header fits.
        self._pending = (bytearray(max(2 * buffer_bytes, 64))
                         if buffer_bytes > 0 else bytearray())
        self._pos = 0
        self._end = 0
        #: adaptive peek: after a large frame, the next header is read
        #: exactly so the (likely large) payload behind it stays out of
        #: the batch and takes the direct single-copy path.
        self._last_large = False
        #: zero-copy parse state: when the source can hand out owned views
        #: of the channel's ring storage (``read_view``), whole batches of
        #: frames are unpickled straight from the view with no copy into
        #: the local batch buffer.  ``[_vpos, len(_view))`` is unparsed.
        self._view: Any = None
        self._vpos = 0
        self._read_view = getattr(source, "read_view", None)

    def read_object(self) -> Any:
        if self.buffer_bytes > 0:
            return self._read_object_buffered()
        header = self._data._exact(4)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(
                f"incoming frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
                " (corrupted or misaligned stream?)")
        payload = self._data._exact(length)
        return pickle.loads(payload)

    # -- buffered mode ------------------------------------------------------
    def _read_object_buffered(self) -> Any:
        while True:
            view = self._view
            if view is not None:
                avail = len(view) - self._vpos
                if avail >= 4:
                    (length,) = _LEN.unpack_from(view, self._vpos)
                    if length > MAX_FRAME_BYTES:
                        raise ChannelError(
                            f"incoming frame of {length} bytes exceeds cap "
                            f"{MAX_FRAME_BYTES} (corrupted or misaligned "
                            "stream?)")
                    start = self._vpos + 4
                    if avail - 4 >= length:
                        # whole frame in the view: unpickle in place
                        obj = pickle.loads(view[start:start + length])
                        self._vpos = start + length
                        if self._vpos == len(view):
                            self._view = None
                        return obj
                    # frame continues beyond the view: assemble the payload
                    # from the view's tail plus further source reads
                    self._view = None
                    return pickle.loads(self._assemble(length, view[start:]))
                # a partial header at the view's tail spills into the batch
                if avail:
                    self._pending[:avail] = view[self._vpos:]
                self._pos, self._end = 0, avail
                self._view = None
            elif self._pos == self._end and self._read_view is not None:
                # batch fully parsed: take the next stretch of the stream
                # as an owned view — when the channel's storage was donated
                # by the receiver pump, the drain steals it back and frames
                # reach ``pickle.loads`` without ever being copied.
                fresh = self._read_view(MAX_FRAME_BYTES)
                if len(fresh) == 0:
                    raise EndOfStreamError("end of stream")
                self._view, self._vpos = fresh, 0
                continue
            return self._read_batch_object()

    def _read_batch_object(self) -> Any:
        """Parse one frame via the copying batch buffer (sources without
        ``read_view``, and leftovers spilled from a view)."""
        self._ensure(4, gulp=not self._last_large)
        (length,) = _LEN.unpack_from(self._pending, self._pos)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(
                f"incoming frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
                " (corrupted or misaligned stream?)")
        self._last_large = length >= self.buffer_bytes
        if length >= self.buffer_bytes:
            # Large frame bypasses the batch (mirror of the writer's
            # bypass): fill one exact-size buffer straight from the
            # source instead of growing ``_pending`` through it.
            start = self._pos + 4
            have = min(self._end - start, length)
            self._pos = start + have
            with memoryview(self._pending) as mv:
                return pickle.loads(
                    self._assemble(length, mv[start:start + have]))
        self._ensure(4 + length)
        start = self._pos + 4
        with memoryview(self._pending) as mv:
            obj = pickle.loads(mv[start:start + length])
        self._pos = start + length
        return obj

    def _assemble(self, length: int, prefix):
        """Build a ``length``-byte payload from ``prefix`` (bytes already
        in hand) plus direct source reads — one allocation, no batch
        growth.  Returns a buffer for ``pickle.loads``.
        """
        have = len(prefix)
        if have == 0:
            # Nothing in hand: a single read() usually returns the whole
            # payload in one allocation-plus-copy (no zero-fill of a
            # destination buffer first).  Partial reads fall through to
            # the assembling path below.
            chunk = self.source.read(length)
            if not chunk:
                raise EndOfStreamError(
                    f"stream ended mid-element: wanted {length} bytes, got 0")
            if len(chunk) == length:
                return chunk
            out = bytearray(length)
            out[:len(chunk)] = chunk
            have = len(chunk)
        else:
            out = bytearray(length)
            out[:have] = prefix
        readinto = getattr(self.source, "readinto", None)
        with memoryview(out) as dst:
            filled = have
            while filled < length:
                if readinto is not None:
                    got = readinto(dst[filled:])
                    if got == 0:
                        raise EndOfStreamError(
                            f"stream ended mid-element: wanted {length} "
                            f"bytes, got {filled}")
                    filled += got
                else:
                    chunk = self.source.read(length - filled)
                    if not chunk:
                        raise EndOfStreamError(
                            f"stream ended mid-element: wanted {length} "
                            f"bytes, got {filled}")
                    dst[filled:filled + len(chunk)] = chunk
                    filled += len(chunk)
        return out

    def _ensure(self, n: int, gulp: bool = True) -> None:
        """Make ``n`` unparsed bytes available, reading straight into the
        fixed storage (one copy, no joins).  With ``gulp`` each read takes
        as much as fits (batching small frames); without it exactly ``n``
        bytes are fetched, keeping a large payload behind a header out of
        the batch."""
        avail = self._end - self._pos
        if avail >= n:
            return
        if len(self._pending) - self._pos < n:
            # slide the leftover to the front to make room for n bytes
            self._pending[:avail] = self._pending[self._pos:self._end]
            self._pos, self._end = 0, avail
        readinto = getattr(self.source, "readinto", None)
        with memoryview(self._pending) as mv:
            while self._end - self._pos < n:
                stop = (len(self._pending) if gulp
                        else self._pos + n)
                if readinto is not None:
                    got = readinto(mv[self._end:stop])
                else:
                    chunk = self.source.read(stop - self._end)
                    got = len(chunk)
                    mv[self._end:self._end + got] = chunk
                if not got:
                    have = self._end - self._pos
                    if have:
                        raise EndOfStreamError(
                            f"stream ended mid-element: wanted {n} bytes, "
                            f"got {have}")
                    raise EndOfStreamError("end of stream")
                self._end += got

    def close(self) -> None:
        self.source.close()


def dumps_framed(obj: Any, protocol: int = pickle.HIGHEST_PROTOCOL) -> bytes:
    """Serialize ``obj`` to a standalone length-prefixed frame (bytes)."""
    buf = io.BytesIO()

    class _Sink(OutputStream):
        def write(self, data: bytes) -> None:
            buf.write(data)

        def close(self) -> None:  # pragma: no cover - unused
            pass

    ObjectOutputStream(_Sink(), protocol).write_object(obj)
    return buf.getvalue()
