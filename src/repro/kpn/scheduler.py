"""Deadlock detection and Parks' bounded scheduling (paper section 3.5).

Bounded channels with blocking writes keep memory use finite and enforce
scheduling fairness, but "may introduce deadlock" — even in acyclic graphs
(paper Figure 13).  Since choosing deadlock-free capacities statically is
undecidable, Parks' bounded-scheduling procedure [13] manages capacities at
run time:

1. Detect that the network has globally stalled: every live process thread
   is blocked on a channel operation.
2. If at least one of them is blocked **writing** to a full channel, the
   deadlock is *artificial*: enlarge the smallest-capacity full channel
   among those written to and resume.  Repeating this executes any program
   that can run in bounded memory using bounded memory, and degrades
   gracefully (buffers grow only as needed) otherwise.
3. If all are blocked **reading**, the deadlock is *true*: no capacity
   assignment helps.  Depending on policy we raise, stop the network, or
   leave it (an externally-fed network may legitimately idle).

Detection uses the blocked-thread accounting that
:class:`~repro.kpn.buffers.BoundedByteBuffer` reports into
:class:`~repro.kpn.buffers.BlockAccounting`: the monitor wakes on every
blocking transition, and a generation-stable double-read filters out the
race where a thread is about to be woken.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.errors import (
    ArtificialDeadlockError,
    TrueDeadlockError,
)
from repro.telemetry.core import TELEMETRY as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.kpn.network import Network

__all__ = ["DeadlockMonitor", "DeadlockPolicy", "GrowthEvent"]


@dataclass
class GrowthEvent:
    """Record of one capacity-growth action (for tests and benchmarks)."""

    channel_name: str
    old_capacity: int
    new_capacity: int
    blocked_processes: tuple[str, ...] = ()


@dataclass
class DeadlockPolicy:
    """Configuration for the monitor's reactions.

    Attributes
    ----------
    grow:
        Resolve artificial deadlocks by growing buffers (Parks).  When
        False, an artificial deadlock is treated per ``on_true``.
    growth_factor:
        Multiplier applied to the chosen channel's capacity.
    max_capacity:
        Hard cap per channel; reaching it turns an artificial deadlock
        into a reported :class:`ArtificialDeadlockError`.
    on_true:
        "raise" — store a :class:`TrueDeadlockError` and shut the network
        down (``Network.join`` re-raises it);
        "stop" — shut down silently;
        "ignore" — leave the network blocked.
    settle_ms:
        Stability window: the stall must persist, with no accounting
        churn, for this long before the monitor acts.
    stall_watchdog_s:
        When set, the monitor snapshots the wait-graph (who is blocked on
        which channel, with buffer fill levels) once per stall after no
        progress has been observed for this many seconds — turning a
        silent hang into an inspectable artifact.  The snapshot lands in
        :attr:`DeadlockMonitor.stall_snapshots` and, with telemetry on,
        as a ``stall.wait_graph`` instant.  None disables the watchdog.
    """

    grow: bool = True
    growth_factor: int = 2
    max_capacity: int = 64 * 1024 * 1024
    on_true: str = "raise"
    settle_ms: float = 20.0
    stall_watchdog_s: Optional[float] = None


class DeadlockMonitor:
    """Watches a network for global stalls and applies the policy.

    The monitor runs in its own daemon thread.  It is *kicked* (woken) by
    every blocking transition in the network's accounting and by process
    thread exits, then re-verifies the stall after a settle window.
    """

    def __init__(self, network: "Network", policy: Optional[DeadlockPolicy] = None,
                 on_event: Optional[Callable[[GrowthEvent], None]] = None) -> None:
        self.network = network
        self.policy = policy or DeadlockPolicy()
        self.on_event = on_event
        self.growth_events: List[GrowthEvent] = []
        #: wait-graph snapshots the stall watchdog captured (newest last)
        self.stall_snapshots: List[dict] = []
        self.error: Optional[Exception] = None
        self._cond = threading.Condition()
        self._kicked = False
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        # stall-watchdog state: the generation we have been observing, when
        # we first saw it, and whether this stall was already snapshotted
        self._stall_gen: Optional[int] = None
        self._stall_since: float = 0.0
        self._stall_reported = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name="deadlock-monitor",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def kick(self) -> None:
        """Wake the monitor to re-examine the network."""
        with self._cond:
            self._kicked = True
            self._cond.notify_all()

    # -- main loop ---------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._kicked and not self._stop:
                    # periodic re-check regardless of kicks: covers the
                    # (unlikely) loss of a wakeup and lets the stall
                    # watchdog observe windows expiring without churn.
                    self._cond.wait(timeout=0.05)
                if self._stop:
                    return
                self._kicked = False
            try:
                self._watchdog()
                self._examine()
            except Exception as exc:  # pragma: no cover - defensive
                self.error = exc
                return

    def _stalled(self) -> Optional[dict]:
        """Return the blocked map if every live network thread is blocked."""
        acct = self.network.accounting
        live = self.network.live_threads()
        if not live:
            return None
        blocked = acct.snapshot()
        if all(t in blocked for t in live):
            return blocked
        return None

    def _watchdog(self) -> None:
        """Snapshot the wait-graph once per stall (no progress for the
        configured window).  Runs on every monitor wakeup, so stalls are
        noticed within ~50 ms of the window expiring even without kicks."""
        window = self.policy.stall_watchdog_s
        if window is None:
            return
        acct = self.network.accounting
        generation = acct.generation
        now = time.monotonic()
        if self._stalled() is None or generation != self._stall_gen:
            # progress (or a different stall): restart the window
            self._stall_gen = generation
            self._stall_since = now
            self._stall_reported = False
            return
        if self._stall_reported or now - self._stall_since < window:
            return
        snapshot = self.network.wait_snapshot()
        snapshot["stalled_for"] = now - self._stall_since
        self.stall_snapshots.append(snapshot)
        self._stall_reported = True
        if _telemetry.enabled:
            _telemetry.instant(
                "stall.wait_graph", category="kpn.scheduler",
                network=self.network.name,
                blocked=[f"{b['thread']}:{b['mode']}:{b['channel']}"
                         f"({b['buffered']}/{b['capacity']})"
                         for b in snapshot["blocked"]],
                stalled_for=snapshot["stalled_for"])
            _telemetry.inc("kpn.scheduler.stall_snapshots")

    def _examine(self) -> None:
        acct = self.network.accounting
        first = self._stalled()
        if first is None:
            return
        gen = acct.generation
        # stability window: wait, then confirm nothing moved.  The wait is
        # sliced so the stall watchdog can fire *during* the window — a
        # long settle must not hide the stall it is confirming.
        deadline = time.monotonic() + self.policy.settle_ms / 1000.0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or self._stop:
                break
            threading.Event().wait(min(remaining, 0.01))
            self._watchdog()
        if acct.generation != gen:
            return
        blocked = self._stalled()
        if blocked is None:
            return
        self._resolve(blocked)

    # -- resolution ----------------------------------------------------------
    def _resolve(self, blocked: dict) -> None:
        live = self.network.live_threads()
        names = tuple(sorted(t.name for t in live))
        write_waits = [
            (buffer, thread)
            for thread, (buffer, mode) in blocked.items()
            if mode == "write" and thread in live
        ]
        if write_waits:
            self._resolve_artificial(write_waits, names)
        else:
            self._resolve_true(names)

    def _resolve_artificial(self, write_waits, names) -> None:
        if not self.policy.grow:
            self.error = ArtificialDeadlockError(
                "artificial deadlock (growth disabled)", names)
            self.network.shutdown()
            return
        # Parks' rule: among the full channels being written to, grow the
        # one with the smallest capacity.
        buffer = min((b for b, _ in write_waits), key=lambda b: b.capacity)
        old = buffer.capacity
        new = min(old * self.policy.growth_factor, self.policy.max_capacity)
        if new <= old:
            self.error = ArtificialDeadlockError(
                f"channel {buffer.name!r} already at max capacity {old}", names)
            self.network.shutdown()
            return
        # grow() emits the channel.grow instant from *this* monitor thread;
        # hand it the blocked writer's name so the profiler can attribute
        # the growth to the process it unblocks.
        writers = sorted(t.name for b, t in write_waits if b is buffer)
        buffer.grow(new, process=writers[0] if writers else "")
        event = GrowthEvent(buffer.name, old, new, names)
        self.growth_events.append(event)
        if _telemetry.enabled:
            # buffer.grow already emitted the channel.grow instant; this
            # one carries the scheduler's verdict (who was blocked).
            _telemetry.instant("deadlock.artificial", category="kpn.scheduler",
                               channel=buffer.name, old=old, new=new,
                               blocked=len(names))
            _telemetry.inc("kpn.scheduler.artificial_deadlocks")
        if self.on_event is not None:
            self.on_event(event)

    def _resolve_true(self, names) -> None:
        if self.policy.on_true == "ignore":
            return
        has_remote = getattr(self.network, "has_remote_links", None)
        if has_remote is not None and has_remote():
            # Distributed case: a read-blocked stall may be waiting on
            # traffic from another server.  Local diagnosis would need the
            # distributed deadlock detection the paper leaves as future
            # work (section 6.2), so we stand down.
            return
        if _telemetry.enabled:
            _telemetry.instant("deadlock.true", category="kpn.scheduler",
                               blocked=len(names))
            _telemetry.inc("kpn.scheduler.true_deadlocks")
        if self.policy.on_true == "raise":
            self.error = TrueDeadlockError(
                f"true deadlock: all processes blocked reading: {names}", names)
        self.network.shutdown()
