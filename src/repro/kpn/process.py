"""Processes: one thread each, iterative skeleton, hierarchical composition.

Reproduces section 3.2 of the paper:

* :class:`Process` — the ``Runnable`` interface; every process executes in
  its own thread "to exploit the parallelism available in the program
  graph".
* :class:`IterativeProcess` — the abstract base with ``on_start`` /
  ``step`` / ``on_stop`` and an optional iteration limit; its ``run``
  method is a line-for-line analogue of the paper's Figure 4, including
  the silent swallowing of channel I/O exceptions that drives the
  cascading-termination protocol of section 3.4.
* :class:`CompositeProcess` — hierarchy without deadlock: every component
  keeps "a separate thread for each process within a CompositeProcess to
  avoid introducing deadlock through composition".
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, List, Optional, Sequence

from repro.errors import BrokenChannelError, ChannelClosedError, ChannelError
from repro.kpn.channel import Channel
from repro.kpn.streams import InputStream, OutputStream
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = ["Process", "IterativeProcess", "CompositeProcess", "StopProcess"]


class ProcessControl:
    """Cooperative pause/resume/abandon control for a running process.

    Live migration (paper section 6.1: "re-distribute processes after
    execution has already begun") needs the process quiescent at a *step
    boundary* — between two ``step()`` calls, when it holds no partial
    element.  The migrator requests a pause; the process parks at its
    next boundary; the migrator serializes and ships it, then tells the
    parked local thread to *abandon* (exit without closing streams — the
    endpoints now live on another server).  ``resume`` instead continues
    locally (migration aborted).
    """

    PAUSE_TIMEOUT = 3600.0

    def __init__(self) -> None:
        self.pause_requested = threading.Event()
        self._parked = threading.Event()
        self._decision = threading.Event()
        self._action = "resume"

    # -- migrator side ------------------------------------------------------
    def request_pause(self) -> None:
        self.pause_requested.set()

    def wait_parked(self, timeout: Optional[float] = None) -> bool:
        """Wait until the process reaches a step boundary and parks.

        False on timeout — e.g. the process is blocked inside a channel
        operation and cannot reach a boundary until data flows.
        """
        return self._parked.wait(timeout)

    def resume(self) -> None:
        self._action = "resume"
        self.pause_requested.clear()
        self._parked.clear()
        self._decision.set()

    def abandon(self) -> None:
        self._action = "abandon"
        self._decision.set()

    # -- process side ---------------------------------------------------------
    def park(self) -> str:
        """Block until the migrator decides; returns the action."""
        self._parked.set()
        self._decision.wait(self.PAUSE_TIMEOUT)
        self._decision.clear()
        return self._action


class StopProcess(Exception):
    """Raised inside ``step`` to terminate the process cleanly.

    Used for data-dependent termination (the Guard process of Figure 11
    stops "after processing the first true value from its control input").
    ``IterativeProcess.run`` treats it exactly like reaching an iteration
    limit: the loop ends and ``on_stop`` closes the process's streams,
    starting the usual termination cascade.
    """

_process_counter = itertools.count()


class Process:
    """Base class for all processes (the paper's ``Process`` interface).

    Subclasses implement :meth:`run`.  A process may hold references to
    channel endpoint streams; those it lists in :attr:`input_streams` and
    :attr:`output_streams` are closed automatically when it stops, which
    is what propagates termination through the graph.
    """

    # -- static-analysis contract (repro.analysis.graphproofs) -------------
    #: True when every step reads exactly one element/chunk from each
    #: non-deferred input *before* producing any output.  Lets the
    #: deadlock pass prove that a zero-token cycle through this process
    #: can never start.
    kpn_strict = False
    #: True when long-run production on every output matches consumption
    #: on the inputs (1:1 transforms, filters on a single output) — i.e.
    #: no data-dependent routing between multiple outputs (ModuloRouter)
    #: and no data-dependent consumption order (OrderedMerge).  Lets the
    #: boundedness pass prove declared capacities sufficient.
    kpn_rate_balanced = False
    #: attribute names of inputs whose first read is deferred until the
    #: process has already produced output (Cons' tail, Delay's source
    #: when it carries initial values) — the static form of a cycle's
    #: initial token.  May be overridden per instance.
    kpn_deferred_inputs: tuple = ()

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"{type(self).__name__}-{next(_process_counter)}"
        self.input_streams: List[InputStream] = []
        self.output_streams: List[OutputStream] = []
        #: the owning network, set by ``Network.add``/``Network.spawn``;
        #: used so dynamically created processes and channels (Sift!) stay
        #: under the same scheduler and deadlock monitor.
        self.network = None  # type: Optional["object"]
        #: an unexpected (non-channel) exception raised by run(), if any
        self.failure: Optional[BaseException] = None
        #: live-migration control; created on demand by :meth:`control`
        self._ctrl: Optional[ProcessControl] = None
        #: set on the serialized copy during live migration so the resume
        #: skips on_start (it already ran on the origin server)
        self._live_migrated = False
        #: when True, close_all_streams *aborts* outputs instead of closing
        #: them: the downstream EOF arrives as BrokenChannelError, marking
        #: the end of stream as a shutdown cascade rather than exhaustion.
        #: run() sets it when the process itself died of a broken/closed
        #: channel (the cascade case); graceful terminations leave it off.
        self._abort_on_close = False

    def control(self) -> ProcessControl:
        """The pause/resume control, created lazily (not picklable)."""
        if self._ctrl is None:
            self._ctrl = ProcessControl()
        return self._ctrl

    # -- wiring helpers ----------------------------------------------------
    def track(self, *streams) -> None:
        """Register endpoint streams for automatic close on stop."""
        for s in streams:
            if isinstance(s, OutputStream):
                self.output_streams.append(s)
            elif isinstance(s, InputStream):
                self.input_streams.append(s)
            else:
                raise TypeError(f"not a stream: {s!r}")

    def untrack(self, *streams) -> None:
        """Stop managing streams whose ownership moved to another process.

        Self-reconfiguring processes hand their channel endpoints to the
        processes they insert (Sift gives its old input to the new Modulo,
        Figure 8); untracking prevents this process's ``on_stop`` from
        closing a stream it no longer owns.
        """
        for s in streams:
            while s in self.output_streams:
                self.output_streams.remove(s)
            while s in self.input_streams:
                self.input_streams.remove(s)

    def close_all_streams(self) -> None:
        """Close every tracked stream (the default ``onStop`` behaviour).

        Outputs are *aborted* instead of closed when the process died of a
        termination cascade (see :attr:`_abort_on_close`); inputs have no
        graceful/abort distinction — closing the read side always breaks
        the writer immediately.
        """
        abort = self._abort_on_close
        for s in self.output_streams:
            try:
                if abort:
                    getattr(s, "abort", s.close)()
                else:
                    s.close()
            except Exception:
                pass
        for s in self.input_streams:
            try:
                s.close()
            except Exception:
                pass

    # -- runtime helpers -----------------------------------------------------
    def new_channel(self, capacity: Optional[int] = None, name: str = "") -> Channel:
        """Create a channel registered with this process's network (if any).

        Self-reconfiguring processes create channels mid-execution (the
        Sift process of Figure 8); routing creation through the network
        keeps the new channel under deadlock accounting.
        """
        net = self.network
        if net is not None:
            return net.channel(capacity=capacity, name=name)
        return Channel(name=name) if capacity is None else Channel(capacity, name=name)

    def spawn(self, process: "Process") -> threading.Thread:
        """Start another process in a new thread, inheriting the network.

        Reconfiguration must be "initiated by processes and not some
        external agent" (section 3.3); this is the hook processes use to
        activate the processes they insert into the graph.
        """
        net = self.network
        if net is not None:
            return net.spawn(process)
        thread = threading.Thread(target=process.run, name=process.name, daemon=True)
        thread.start()
        return thread

    # -- to be provided by subclasses -------------------------------------
    def run(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # never ship the network, a failure, or thread-affine control
        state["network"] = None
        state["failure"] = None
        state["_ctrl"] = None
        return state


class IterativeProcess(Process):
    """The ``onStart`` / ``step`` / ``onStop`` skeleton of Figure 4.

    Parameters
    ----------
    iterations:
        Number of ``step`` invocations before stopping; ``0`` (the
        default) means run until a channel exception occurs.  Iteration
        limits are the paper's primary termination mechanism (section
        3.4): limit the Print process to get "the first 100 primes",
        limit the Sequence process to get "all primes below 100".
    """

    def __init__(self, iterations: int = 0, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.iterations = iterations
        #: how many steps actually completed (diagnostics/tests)
        self.steps_completed = 0

    def on_start(self) -> None:
        """One-time initialization; default does nothing."""

    def step(self) -> None:
        """One unit of work; default does nothing."""

    def on_stop(self) -> None:
        """One-time cleanup; default closes all tracked streams."""
        self.close_all_streams()

    def _pause_point(self) -> bool:
        """Between steps: park if a migrator asked; True means abandon."""
        ctrl = self._ctrl
        if ctrl is not None and ctrl.pause_requested.is_set():
            return ctrl.park() == "abandon"
        return False

    def run(self) -> None:
        abandoned = False
        traced = _telemetry.enabled
        if traced:
            # `process` repeats the span name so kpn.process / kpn.block /
            # kpn.channel events are all joinable on the same arg key
            _telemetry.begin(self.name, category="kpn.process",
                             kind=type(self).__name__, process=self.name)
            _telemetry.inc("kpn.process.started")
        reason = "limit"
        try:
            if not self._live_migrated:
                self.on_start()
            # counting against steps_completed (rather than a local
            # countdown) lets a live-migrated process resume exactly where
            # it parked — "data elements are neither lost nor repeated".
            while self.iterations <= 0 or self.steps_completed < self.iterations:
                if self._pause_point():
                    abandoned = True
                    reason = "abandoned"
                    return
                self.step()
                self.steps_completed += 1
        except StopProcess:
            # Voluntary, data-dependent termination (Guard, ConsumerTask
            # finding its answer): treated like an iteration limit.
            reason = "stop"
        except ChannelError as exc:
            # Normal termination signal: an upstream or downstream process
            # stopped and closed its streams (section 3.4).  A *graceful*
            # end (EndOfStreamError after source exhaustion) closes our
            # outputs normally; a cascade (the channel broken or closed
            # under us) aborts them, so the abort — not a fake EOF —
            # propagates downstream and merge tails stay deterministic.
            reason = "channel-closed"
            if isinstance(exc, (BrokenChannelError, ChannelClosedError)):
                self._abort_on_close = True
        except Exception as exc:  # noqa: BLE001 - report, then still clean up
            self.failure = exc
            reason = "failure"
        finally:
            if not abandoned:
                self.on_stop()
            # abandoned: the streams belong to the migrated copy now —
            # closing them here would sever the moved process's channels.
            if traced:
                _telemetry.end(self.name, category="kpn.process",
                               reason=reason, steps=self.steps_completed,
                               process=self.name)
                _telemetry.inc("kpn.process.terminated", 1, reason=reason)


class CompositeProcess(Process):
    """Hierarchy in the program graph (section 3.2, Figure 6).

    Running a composite starts **one thread per component** and waits for
    all of them: sequencing the components' steps in a single thread could
    deadlock, so composition never reduces concurrency.  Composites nest:
    a member may itself be a CompositeProcess.  Distributing a composite
    moves all of its members (and their channel endpoints) together, which
    is exactly how the paper partitions graphs across servers (Figures
    14–15).
    """

    def __init__(self, processes: Iterable[Process] = (), name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.processes: List[Process] = list(processes)

    def add(self, process: Process) -> Process:
        self.processes.append(process)
        if self.network is not None:
            process.network = self.network
        return process

    def members(self) -> Sequence[Process]:
        return tuple(self.processes)

    def flatten(self) -> List[Process]:
        """All leaf (non-composite) processes, recursively."""
        leaves: List[Process] = []
        for p in self.processes:
            if isinstance(p, CompositeProcess):
                leaves.extend(p.flatten())
            else:
                leaves.append(p)
        return leaves

    def run(self) -> None:
        traced = _telemetry.enabled
        if traced:
            _telemetry.begin(self.name, category="kpn.process",
                             kind=type(self).__name__,
                             members=len(self.processes), process=self.name)
        threads = []
        for p in self.processes:
            if p.network is None:
                p.network = self.network
            if self.network is not None:
                threads.append(self.network.spawn(p))
            else:
                t = threading.Thread(target=p.run, name=p.name, daemon=True)
                t.start()
                threads.append(t)
        for t in threads:
            t.join()
        failures = [p for p in self.processes if p.failure is not None]
        if failures:
            self.failure = failures[0].failure
        if traced:
            _telemetry.end(self.name, category="kpn.process",
                           failures=len(failures), process=self.name)

    def close_all_streams(self) -> None:
        super().close_all_streams()
        for p in self.processes:
            p.close_all_streams()
