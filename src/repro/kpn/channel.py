"""Channels: the operational embodiment of Kahn streams (paper section 3.1).

A :class:`Channel` is a FIFO connection between exactly one producing and
one consuming process.  ``get_output_stream`` / ``get_input_stream`` hand
out the two endpoint objects; all process communication goes through them
as **streams of bytes**, so type-independent processes (Cons, Duplicate)
need no knowledge of the traffic's structure, and typed traffic is layered
on top with :mod:`repro.kpn.data` / :mod:`repro.kpn.objects` inside the
processes themselves.

The endpoint objects carry the full layer stack of Figure 3 and expose the
hooks the rest of the system needs:

* splicing (``splice_from``) for self-reconfiguring graphs (Figure 10);
* the underlying buffer for the deadlock monitor and Parks' capacity
  growth;
* the sequence layers for the migration machinery, which swaps the lowest
  layer between local and socket transports.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional, Sequence

from repro.kpn.buffers import BlockAccounting, BoundedByteBuffer, DEFAULT_CAPACITY
from repro.telemetry.core import TELEMETRY as _telemetry
from repro.kpn.streams import (
    BlockingInputStream,
    InputStream,
    LocalInputStream,
    LocalOutputStream,
    OutputStream,
    SequenceInputStream,
    SequenceOutputStream,
)

__all__ = ["Channel", "ChannelInputStream", "ChannelOutputStream", "wait_any_readable"]

_channel_counter = itertools.count()


class ChannelOutputStream(OutputStream):
    """Producer endpoint of a channel.

    Writes pass through a :class:`SequenceOutputStream` so the transport
    below can be swapped (local pipe ↔ network socket) without the owning
    process noticing.
    """

    def __init__(self, channel: "Channel", sequence: SequenceOutputStream) -> None:
        self.channel = channel
        self.sequence = sequence

    def write(self, data: bytes) -> None:
        self.sequence.write(data)

    def write_vectored(self, chunks) -> None:
        self.sequence.write_vectored(chunks)

    def flush(self) -> None:
        self.sequence.flush()

    def close(self) -> None:
        self.sequence.close()

    def abort(self) -> None:
        self.sequence.abort()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChannelOutputStream of {self.channel.name!r}>"


class ChannelInputStream(InputStream):
    """Consumer endpoint of a channel.

    The layer stack is ``BlockingInputStream -> SequenceInputStream ->
    LocalInputStream`` (or a remote stream after migration).  The
    :class:`SequenceInputStream` inside every ChannelInputStream is what
    makes reconfiguration possible: when an upstream process removes
    itself, its own input is appended here and the consumer continues
    reading "without interruption" (paper Figure 10).
    """

    def __init__(self, channel: "Channel", blocking: BlockingInputStream,
                 sequence: SequenceInputStream) -> None:
        self.channel = channel
        self.blocking = blocking
        self.sequence = sequence
        #: set when ownership of this endpoint's tail has been transferred
        #: to another channel by a splice; close() then becomes a no-op so
        #: the departing process's onStop cannot sever the spliced data.
        self.detached = False

    # -- reading ---------------------------------------------------------
    def read(self, max_bytes: int) -> bytes:
        return self.blocking.read(max_bytes)

    def readinto(self, target) -> int:
        return self.blocking.readinto(target)

    def read_exactly(self, n: int) -> bytes:
        return self.blocking.read_exactly(n)

    def available(self) -> int:
        return self.blocking.available()

    def at_eof(self) -> bool:
        return self.blocking.at_eof()

    def poll_ready(self) -> bool:
        """True if a read would not block (data buffered or EOF)."""
        return self.blocking.available() > 0 or self.blocking.at_eof()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self.detached:
            return
        self.blocking.close()

    # -- reconfiguration ---------------------------------------------------
    def splice_from(self, upstream: "ChannelInputStream") -> None:
        """Append ``upstream``'s byte sequence after this channel's bytes.

        Implements the 3-stage reconfiguration of Figure 10: the removing
        process calls ``downstream_input.splice_from(own_input)`` and then
        closes its *output*; the consumer drains the removing process's
        channel, reaches its end, and continues seamlessly with the
        upstream channel's data.  ``upstream`` is detached so the removing
        process's automatic stream cleanup cannot close it.
        """
        upstream.detached = True
        self.sequence.append(upstream.sequence)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChannelInputStream of {self.channel.name!r}>"


class Channel:
    """A single-producer single-consumer FIFO byte queue.

    Parameters
    ----------
    capacity:
        Initial buffer capacity in bytes (blocking writes beyond it —
        paper section 3.5).  The scheduler may grow it at run time.
    name:
        Diagnostic label; autogenerated when omitted.
    accounting:
        Blocked-thread accounting shared with the owning network's
        deadlock monitor.  Installed automatically by
        :class:`repro.kpn.network.Network`.
    link_chunk:
        Bytes per pump read when this channel is stretched over a socket
        link (default: :data:`repro.distributed.sockets.LINK_CHUNK`, env
        ``REPRO_LINK_CHUNK``).
    coalesce:
        Coalescing watermark for this channel's sender pump — the maximum
        bytes packed into one DATA frame (0 disables coalescing; default:
        :data:`repro.distributed.sockets.COALESCE_WATERMARK`, env
        ``REPRO_COALESCE_WATERMARK``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, name: str = "",
                 accounting: Optional[BlockAccounting] = None,
                 link_chunk: Optional[int] = None,
                 coalesce: Optional[int] = None) -> None:
        self.name = name or f"channel-{next(_channel_counter)}"
        #: per-channel socket-link tuning, consumed by the migration
        #: machinery when it installs pumps for this channel
        self.link_chunk = link_chunk
        self.coalesce = coalesce
        self.buffer = BoundedByteBuffer(capacity, name=self.name,
                                        accounting=accounting)
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.created")
            _telemetry.instant("channel.created", category="kpn.channel",
                               channel=self.name, capacity=capacity)
        self._lock = threading.Lock()
        self._input: Optional[ChannelInputStream] = None
        self._output: Optional[ChannelOutputStream] = None
        #: set by the graph compiler when this channel's ring is bypassed
        #: by an intra-chain fused pipe (name and endpoints survive; the
        #: profiler and capacity advisor skip fused channels)
        self.fused = False

    # -- endpoints ---------------------------------------------------------
    def get_output_stream(self) -> ChannelOutputStream:
        with self._lock:
            if self._output is None:
                seq = SequenceOutputStream(LocalOutputStream(self.buffer))
                self._output = ChannelOutputStream(self, seq)
            return self._output

    def get_input_stream(self) -> ChannelInputStream:
        with self._lock:
            if self._input is None:
                seq = SequenceInputStream(LocalInputStream(self.buffer))
                self._input = ChannelInputStream(self, BlockingInputStream(seq), seq)
            return self._input

    # -- scheduler hooks -----------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.buffer.capacity

    def grow(self, new_capacity: int, process: str = "") -> None:
        self.buffer.grow(new_capacity, process=process)

    def set_accounting(self, accounting: Optional[BlockAccounting]) -> None:
        self.buffer.accounting = accounting

    def occupancy(self) -> dict:
        """Current fill level for the profiler's channel sampling."""
        entry = {"channel": self.name, "buffered": self.buffer.available(),
                 "capacity": self.buffer.capacity,
                 "high_watermark": self.buffer.high_watermark}
        if self.fused:
            entry["fused"] = True
        return entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Channel {self.name!r} cap={self.buffer.capacity}>"


def wait_any_readable(inputs: Sequence[ChannelInputStream],
                      poll_interval: float = 0.002,
                      timeout: Optional[float] = None) -> list[int]:
    """Block until at least one input is readable; return the ready indices.

    This is the nondeterministic primitive used *only* by the Turnstile
    process (paper Figures 17–18) — ordinary Kahn processes never test for
    data availability.  Readiness events are delivered by buffer listeners
    where the input's head is a local buffer; a short poll interval covers
    inputs whose head is an exotic layered stream (e.g. mid-splice).
    """
    event = threading.Event()
    buffers: list[BoundedByteBuffer] = []
    for s in inputs:
        head = s.sequence.current
        if isinstance(head, LocalInputStream):
            head.buffer.add_listener(event.set)
            buffers.append(head.buffer)
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while True:
            ready = [i for i, s in enumerate(inputs) if s.poll_ready()]
            if ready:
                return ready
            if deadline is not None and time.monotonic() >= deadline:
                return []
            event.clear()
            event.wait(poll_interval)
    finally:
        for b in buffers:
            b.remove_listener(event.set)


def make_channels(n: int, capacity: int = DEFAULT_CAPACITY,
                  prefix: str = "ch") -> list[Channel]:
    """Convenience: create ``n`` channels named ``prefix-0..n-1``."""
    return [Channel(capacity, name=f"{prefix}-{i}") for i in range(n)]
