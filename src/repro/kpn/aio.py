"""Cooperative scheduling substrate: the ``backend="async"`` runtime.

The paper runs every KPN process on its own Java thread.  That is also
this library's reference backend — but one OS thread per process caps
practical graph sizes at a few thousand processes (stack memory, context
switches, scheduler pressure).  This module multiplexes *cooperative
tasks* over a small pool of event-loop threads so one core can host tens
of thousands of processes, while keeping the channel contract — blocking
reads, bounded blocking writes — observably identical.

How a blocking operation suspends without a dedicated stack
-----------------------------------------------------------

CPython (no greenlets here) cannot snapshot a C-level call stack, so a
task cannot be frozen mid-``step()`` the way a thread can.  Instead the
runtime executes each ``step()`` as a **speculative transaction with an
operation journal**:

1. Before a step, the runner snapshots the process's mutable state
   (attributes + the channel-endpoint layering state).
2. Channel operations inside the step go through the thread-local async
   context installed by the event loop.  Each *completed* operation is
   journaled: reads record the returned bytes, writes record how many
   bytes were actually delivered to the ring.  Writes deliver directly —
   they are never staged — so a same-step write-then-read feedback cycle
   (Figure 7's Cons/Delay loop) behaves exactly as in the thread backend.
3. When an operation would block, :class:`_WouldBlock` (a BaseException,
   so user ``except Exception`` clauses cannot swallow it) unwinds the
   step, the snapshot is restored, and the task parks on the buffer's
   waiter list (:meth:`~repro.kpn.buffers.BoundedByteBuffer.async_park`).
4. On wake the step is **re-executed**: journaled reads replay their
   recorded bytes without consuming anything, journaled writes resume at
   the recorded offset.  Because Kahn processes are determinate, the
   re-execution reaches the blocked operation with identical arguments —
   the journal is a proof obligation of exactly the property the paper's
   model guarantees.

Effects at the channels are therefore exactly-once even though the Python
code of a step may run many times; the state restore makes the re-runs
invisible.  The cost is one ``__dict__``-level snapshot per step — cheap
for the fine-grained processes KPN graphs are made of.

What runs as a task
-------------------

``Network.spawn`` routes a process here when it is an
:class:`~repro.kpn.process.IterativeProcess` with the *default* ``run``
and no ``@nondeterminate`` marker, or a compiler-produced
:class:`~repro.kpn.compile.FusedChain` (the whole chain becomes one task;
each ``pump`` is one transaction).  Everything else — custom ``run``
loops, Turnstile's readiness polling, plain composites — keeps its OS
thread, and both kinds of actor interoperate freely on the same channels:
the buffer wakes condition-variable waiters and parked tasks alike.

Known limits (documented, deliberate):

* A step that mutates a *non-builtin* mutable object (say, a numpy array
  held in an attribute) before a blocking channel op would replay that
  mutation; the snapshot covers attributes and builtin containers
  (list/dict/deque/set/bytearray, nested).  Processes that execute
  opaque user objects opt out with ``kpn_async = False`` — the farm's
  Producer/Worker/Consumer do exactly that, because user ``Task.run()``
  methods mutate their own state — and keep their OS thread.
* Live migration pause points are not polled between task steps; migrate
  from thread-backend networks (servers default to threads).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Callable, List, Optional

from repro.errors import (
    BrokenChannelError,
    ChannelClosedError,
    ChannelError,
)
from repro.kpn.buffers import BoundedByteBuffer, set_async_context
from repro.kpn.process import IterativeProcess, StopProcess
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = ["EventLoop", "Task", "async_hostable"]

#: steps a task may run per resume before yielding the loop (fairness:
#: a ring of never-blocking relays must not starve its loop-mates)
MAX_STEPS_PER_RESUME = 64

_vtid_counter = itertools.count(1)


def _next_vtid() -> int:
    """Virtual tids are negative so they can never collide with OS thread
    idents in merged traces."""
    return -next(_vtid_counter)


# ---------------------------------------------------------------------------
# suspension signal
# ---------------------------------------------------------------------------

class _WouldBlock(BaseException):
    """Unwinds a speculative step at an operation that would block.

    BaseException on purpose: step bodies and the fused-stage driver
    legitimately catch ``Exception`` (and ``ChannelError``), and none of
    them may swallow a suspension.
    """

    def __init__(self, buffer: BoundedByteBuffer, mode: str) -> None:
        self.buffer = buffer
        self.mode = mode


# ---------------------------------------------------------------------------
# the operation journal
# ---------------------------------------------------------------------------

class _AsyncContext:
    """Per-task channel-operation journal (installed thread-locally).

    Journal entries are ``["read", buffer, bytes]`` (recorded result;
    ``b""`` records EOF) or ``["write", buffer, total, delivered]``.  A
    write entry with ``delivered < total`` is always the journal's last
    entry — the op that blocked; re-execution resumes delivery at
    ``delivered``.  ``["record", buffer]`` marks a history append (fused
    chains mirror bytes into channel histories) so replays do not append
    twice.
    """

    __slots__ = ("task", "journal", "pos")

    def __init__(self, task: "Task") -> None:
        self.task = task
        self.journal: list = []
        self.pos = 0

    # -- transaction control ------------------------------------------------
    def begin_attempt(self) -> None:
        self.pos = 0

    def finish(self) -> None:
        self.journal.clear()
        self.pos = 0

    def _divergence(self, buffer, kind) -> RuntimeError:  # pragma: no cover
        return RuntimeError(
            f"async replay divergence in task {self.task.name!r}: expected "
            f"{self.journal[self.pos]!r}, got {kind} on {buffer.name!r} — "
            "the step is not determinate; host it on a thread "
            "(kpn_async = False)")

    # -- operations (called from buffers.py hooks) --------------------------
    def read(self, buffer: BoundedByteBuffer, max_bytes: int) -> bytes:
        if self.pos < len(self.journal):
            entry = self.journal[self.pos]
            if entry[0] != "read" or entry[1] is not buffer:
                raise self._divergence(buffer, "read")
            self.pos += 1
            return entry[2]
        res = buffer.try_read(max_bytes)
        if res is None:
            raise _WouldBlock(buffer, "read")
        self.journal.append(["read", buffer, res])
        self.pos += 1
        return res

    def readinto(self, buffer: BoundedByteBuffer, out: memoryview) -> int:
        if self.pos < len(self.journal):
            entry = self.journal[self.pos]
            if entry[0] != "read" or entry[1] is not buffer:
                raise self._divergence(buffer, "readinto")
            data = entry[2]
            out[:len(data)] = data
            self.pos += 1
            return len(data)
        n = buffer.try_readinto(out)
        if n is None:
            raise _WouldBlock(buffer, "read")
        # journal the bytes (not just the count): the replayed target
        # buffer is a fresh object, so the data must come from the journal
        self.journal.append(["read", buffer, bytes(out[:n])])
        self.pos += 1
        return n

    def write(self, buffer: BoundedByteBuffer, data) -> None:
        view = memoryview(data).cast("B")
        if self.pos < len(self.journal):
            entry = self.journal[self.pos]
            if entry[0] != "write" or entry[1] is not buffer:
                raise self._divergence(buffer, "write")
            if entry[3] >= entry[2]:
                self.pos += 1
                return
            # trailing partial entry: resume delivery where it blocked
            entry[3] = buffer.try_write_part(view, entry[3])
            if entry[3] < entry[2]:
                raise _WouldBlock(buffer, "write")
            self.pos += 1
            return
        if _telemetry.enabled:
            _telemetry.inc("kpn.channel.writes", 1, channel=buffer.name)
        entry = ["write", buffer, len(view), 0]
        self.journal.append(entry)
        entry[3] = buffer.try_write_part(view, 0)
        if entry[3] < entry[2]:
            raise _WouldBlock(buffer, "write")
        self.pos += 1

    def record_bytes(self, buffer: BoundedByteBuffer, data) -> None:
        if self.pos < len(self.journal):
            entry = self.journal[self.pos]
            if entry[0] != "record" or entry[1] is not buffer:
                raise self._divergence(buffer, "record")
            self.pos += 1
            return
        buffer.record_bytes_direct(data)
        self.journal.append(["record", buffer])
        self.pos += 1


# ---------------------------------------------------------------------------
# state snapshot / restore
# ---------------------------------------------------------------------------

_MAX_SNAP_DEPTH = 6


def _record_containers(value, out: list, seen: set, depth: int = 0) -> None:
    """Register builtin mutable containers for in-place content restore.

    Identity is the whole point: a process may share a container with the
    outside world (``Collect(into=results)`` aliases the caller's list),
    so a rollback must rewind the *contents* of the original objects, not
    swap in copies.  Streams, codecs, channels, processes stay shared
    references — their replay-relevant state is captured separately
    (stream layering) or journaled (buffers).  Depth-capped as a cycle
    guard (the ``seen`` set already stops direct cycles).
    """
    if depth >= _MAX_SNAP_DEPTH:
        return
    t = type(value)
    if t is tuple:
        for v in value:
            _record_containers(v, out, seen, depth + 1)
        return
    if t not in (list, dict, deque, set, bytearray):
        return
    vid = id(value)
    if vid in seen:
        return
    seen.add(vid)
    if t is list or t is deque:
        out.append((value, list(value)))
        for v in value:
            _record_containers(v, out, seen, depth + 1)
    elif t is dict:
        out.append((value, dict(value)))
        for v in value.values():
            _record_containers(v, out, seen, depth + 1)
    elif t is set:
        out.append((value, set(value)))
    else:  # bytearray
        out.append((value, bytes(value)))


def _restore_containers(containers: list) -> None:
    for obj, state in containers:
        t = type(obj)
        if t is list or t is bytearray:
            obj[:] = state
        elif t is dict or t is set:
            obj.clear()
            obj.update(state)
        else:  # deque (maxlen survives clear+extend)
            obj.clear()
            obj.extend(state)


def _snap_object(obj, containers: list, seen: set) -> dict:
    saved = dict(obj.__dict__)
    for v in saved.values():
        # inline pre-filter: most attributes are scalars/objects, and a
        # per-value call into _record_containers dominates snapshot cost
        t = v.__class__
        if (t is list or t is dict or t is deque or t is tuple
                or t is set or t is bytearray):
            _record_containers(v, containers, seen)
    return saved


def _restore_object(obj, saved: dict) -> None:
    obj.__dict__.clear()
    obj.__dict__.update(saved)


def _stream_plan(process) -> list:
    """Find the endpoint-layering objects a replay must rewind.

    The :class:`~repro.kpn.streams.SequenceInputStream` advance protocol
    *pops* its head stream on EOF before trying the next one; if a step
    advanced a sequence and then blocked, re-execution would otherwise
    skip ops and desynchronize the journal.  Same for the output
    sequence's target swap and the endpoint ``detached`` flag.  The plan
    (which objects to capture) is stable while the tracked-stream lists
    are; tasks cache it keyed on those lists' lengths.
    """
    plan = []
    for s in getattr(process, "input_streams", ()):
        seq = getattr(s, "sequence", None)
        if seq is not None and hasattr(seq, "_streams"):
            plan.append(("in", seq))
        if hasattr(s, "detached"):
            plan.append(("det", s))
    for s in getattr(process, "output_streams", ()):
        seq = getattr(s, "sequence", None)
        if seq is not None and hasattr(seq, "_target"):
            plan.append(("out", seq))
    return plan


def _capture_streams(plan: list) -> list:
    states = []
    for kind, obj in plan:
        if kind == "in":
            states.append(("in", obj, list(obj._streams),
                           obj._closed, obj._finished))
        elif kind == "out":
            states.append(("out", obj, obj._target, obj._closed))
        else:
            states.append(("det", obj, obj.detached))
    return states


def _restore_streams(states: list) -> None:
    for st in states:
        kind = st[0]
        if kind == "in":
            _, seq, streams, closed, finished = st
            with seq._lock:
                # another process may have spliced new upstream sequences
                # in while we were parked (Figure 10 reconfiguration);
                # appends land at the tail and must survive the rollback
                known = {id(x) for x in streams}
                appended = [x for x in seq._streams if id(x) not in known]
                seq._streams[:] = streams + appended
                seq._closed = closed
                seq._finished = finished and not appended
        elif kind == "out":
            _, seq, target, closed = st
            seq._target = target
            seq._closed = closed
        else:
            _, s, detached = st
            s.detached = detached


class _Snapshot:
    __slots__ = ("objects", "containers", "streams")

    def __init__(self, objects: list, containers: list,
                 streams: list) -> None:
        self.objects = objects        # [(obj, saved_dict_of_refs), ...]
        self.containers = containers  # [(container, shallow_state), ...]
        self.streams = streams

    def restore(self) -> None:
        for obj, saved in self.objects:
            _restore_object(obj, saved)
        _restore_containers(self.containers)
        _restore_streams(self.streams)


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------

class Task:
    """One cooperative KPN process: the async backend's thread-equivalent.

    Duck-types the slice of ``threading.Thread`` the rest of the runtime
    relies on — ``name``, ``is_alive()``, ``join(timeout)``, ``daemon`` —
    so ``Network.live_threads``, composite joins and the deadlock
    monitor's wait-graph logic work on mixed actor populations unchanged.
    """

    daemon = True

    def __init__(self, process, loop: "EventLoop",
                 on_finish: Optional[Callable[[], None]] = None) -> None:
        self.process = process
        self.name = process.name
        self.loop = loop
        self.vtid = _next_vtid()
        self._on_finish = on_finish
        self._done = threading.Event()
        self._ctx = _AsyncContext(self)
        self._phase = "start"
        self._began = False
        self._traced = False
        self._park_traced = False
        self._reason = "limit"
        self._body = self._advance_chain if _is_fused_chain(process) \
            else self._advance_iterative
        # fused-chain cursor: drivers still to finish, tail first
        self._drivers = (list(reversed(process.drivers))
                         if _is_fused_chain(process) else None)
        self._dindex = 0
        # cached snapshot plan (see _snap_targets)
        self._plan = None
        self._plan_key = None

    # -- Thread-compatible surface ------------------------------------------
    def is_alive(self) -> bool:
        return not self._done.is_set()

    def join(self, timeout: Optional[float] = None) -> None:
        self._done.wait(timeout)

    def start(self) -> None:
        self.loop.schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done.is_set() else self._phase
        return f"<Task {self.name!r} {state}>"

    # -- wake protocol (called by buffers, any thread, buffer lock held) ----
    def unparked(self, buffer: BoundedByteBuffer, mode: str) -> None:
        if self._park_traced:
            self._park_traced = False
            # close the block span in the *task's* lane even though the
            # waking thread emits it
            prev = _telemetry.swap_actor((self.vtid, self.name))
            try:
                _telemetry.end(f"block.{mode}", category="kpn.block")
            finally:
                _telemetry.swap_actor(prev)
        self.loop.schedule(self)

    # -- execution ----------------------------------------------------------
    def _resume(self) -> None:
        """One scheduling quantum; runs on the event-loop thread."""
        set_async_context(self._ctx)
        prev = _telemetry.swap_actor((self.vtid, self.name))
        try:
            self._body()
        finally:
            _telemetry.swap_actor(prev)
            set_async_context(None)

    def _park(self, wb: _WouldBlock) -> None:
        self._park_traced = _telemetry.enabled
        if not wb.buffer.async_park(wb.mode, self):
            # state changed between the would-block and the park: retry
            self._park_traced = False
            self.loop.schedule(self)

    def _tx(self, fn):
        """Run ``fn`` as one speculative transaction.

        Returns ``(True, result)`` on commit; ``(False, None)`` after
        parking (the caller returns immediately — resume re-enters it).
        Non-suspension exceptions commit partial channel effects and
        propagate, mirroring a thread that dies mid-step.
        """
        ctx = self._ctx
        ctx.begin_attempt()
        snapshot = self._take_snapshot()
        try:
            result = fn()
        except _WouldBlock as wb:
            snapshot.restore()
            self._park(wb)
            return False, None
        except BaseException:
            ctx.finish()
            raise
        ctx.finish()
        return True, result

    def _snap_targets(self) -> tuple:
        """Objects to __dict__-snapshot + the stream plan, cached.

        The cache key is the tracked-stream list lengths: ``track`` /
        ``untrack`` (dynamic reconfiguration) change them, everything
        else leaves the plan stable from step to step.
        """
        p = self.process
        if self._drivers is not None:
            procs = p.processes
            key = tuple((len(s.input_streams), len(s.output_streams))
                        for s in procs)
            if self._plan is None or self._plan_key != key:
                plan: list = []
                for st in procs:
                    plan.extend(_stream_plan(st))
                self._plan_key = key
                self._plan = ([p, *procs, *p.drivers, *p.pipes], plan)
            return self._plan
        key = (len(p.input_streams), len(p.output_streams))
        if self._plan is None or self._plan_key != key:
            self._plan_key = key
            self._plan = ([p], _stream_plan(p))
        return self._plan

    def _take_snapshot(self) -> _Snapshot:
        objects_to_snap, plan = self._snap_targets()
        containers: list = []
        seen: set = set()
        objects = [(o, _snap_object(o, containers, seen))
                   for o in objects_to_snap]
        return _Snapshot(objects, containers, _capture_streams(plan))

    # -- IterativeProcess body ----------------------------------------------
    def _advance_iterative(self) -> None:
        """Mirror of :meth:`IterativeProcess.run`, one quantum at a time."""
        p = self.process
        if not self._began:
            self._began = True
            self._traced = _telemetry.enabled
            if self._traced:
                _telemetry.begin(p.name, category="kpn.process",
                                 kind=type(p).__name__, process=p.name)
                _telemetry.inc("kpn.process.started")
        budget = MAX_STEPS_PER_RESUME
        try:
            if self._phase == "start":
                if not p._live_migrated:
                    ok, _ = self._tx(p.on_start)
                    if not ok:
                        return
                self._phase = "step"
            while self._phase == "step":
                if 0 < p.iterations <= p.steps_completed:
                    self._reason = "limit"
                    self._phase = "stop"
                    break
                ok, _ = self._tx(p.step)
                if not ok:
                    return
                p.steps_completed += 1
                budget -= 1
                if budget <= 0:
                    self.loop.schedule(self)
                    return
        except StopProcess:
            self._reason = "stop"
            self._phase = "stop"
        except ChannelError as exc:
            self._reason = "channel-closed"
            if isinstance(exc, (BrokenChannelError, ChannelClosedError)):
                p._abort_on_close = True
            self._phase = "stop"
        except Exception as exc:  # noqa: BLE001 - mirror IterativeProcess.run
            p.failure = exc
            self._reason = "failure"
            self._phase = "stop"
        if self._phase == "stop":
            self._run_stop()

    def _run_stop(self) -> None:
        p = self.process
        self._phase = "stop"
        self._body = self._run_stop  # a park inside on_stop resumes here
        try:
            ok, _ = self._tx(p.on_stop)
            if not ok:
                return
        except ChannelError:
            pass
        except Exception as exc:  # noqa: BLE001 - keep the cascade alive
            if p.failure is None:
                p.failure = exc
        self._finish_iterative()

    def _finish_iterative(self) -> None:
        p = self.process
        if self._traced:
            _telemetry.end(p.name, category="kpn.process",
                           reason=self._reason, steps=p.steps_completed,
                           process=p.name)
            _telemetry.inc("kpn.process.terminated", 1, reason=self._reason)
        self._complete()

    # -- FusedChain body ----------------------------------------------------
    def _advance_chain(self) -> None:
        """Mirror of :meth:`FusedChain.run`: drive stages tail-to-head.

        Each ``pump`` is one transaction; a pump that blocks in a
        boundary-channel op parks the whole chain, exactly as it would
        block the chain's thread.
        """
        chain = self.process
        if not self._began:
            self._began = True
            self._traced = _telemetry.enabled
            if self._traced:
                _telemetry.begin(chain.name, category="kpn.process",
                                 kind="FusedChain",
                                 members=len(chain.processes),
                                 process=chain.name)
        budget = MAX_STEPS_PER_RESUME
        while self._dindex < len(self._drivers):
            driver = self._drivers[self._dindex]
            ok, more = self._tx(driver.pump)
            if not ok:
                return
            if not more:
                self._dindex += 1
                continue
            budget -= 1
            if budget <= 0:
                self.loop.schedule(self)
                return
        failures = [p for p in chain.processes if p.failure is not None]
        if failures:
            chain.failure = failures[0].failure
        if self._traced:
            _telemetry.end(chain.name, category="kpn.process",
                           failures=len(failures), process=chain.name)
        self._complete()

    # -- termination --------------------------------------------------------
    def _complete(self) -> None:
        self._done.set()
        if self._on_finish is not None:
            self._on_finish()


def _is_fused_chain(process) -> bool:
    # late import would be circular at module load; attribute probe is
    # enough (drivers+pipes is the FusedChain execution contract)
    return hasattr(process, "drivers") and hasattr(process, "pipes")


def async_hostable(process) -> bool:
    """Can ``process`` run as a cooperative task?

    Yes for compiler-produced fused chains and for IterativeProcess
    subclasses that keep the default ``run`` skeleton, are not declared
    ``@nondeterminate`` (Turnstile polls for readiness — it needs a
    thread), and do not opt out with ``kpn_async = False``.  Everything
    else keeps the thread backend's semantics on its own OS thread.
    """
    from repro.analysis.markers import declared_nondeterminate

    if not getattr(process, "kpn_async", True):
        return False
    if _is_fused_chain(process):
        # every member must be replay-safe: the chain snapshots exactly
        # what a lone task would snapshot, per stage
        return all(getattr(p, "kpn_async", True) for p in process.processes)
    if not isinstance(process, IterativeProcess):
        return False
    if type(process).run is not IterativeProcess.run:
        return False
    if declared_nondeterminate(process) is not None:
        return False
    return True


# ---------------------------------------------------------------------------
# the event loop
# ---------------------------------------------------------------------------

class EventLoop:
    """One worker thread multiplexing ready tasks.

    Deliberately minimal: a deque of runnable tasks and a condition
    variable.  Parked tasks are *not* known to the loop — they live on
    buffer waiter lists and re-enter via :meth:`schedule` (thread-safe,
    called from whatever thread changed the buffer).  Fairness comes from
    FIFO order plus each task's per-resume step budget.
    """

    def __init__(self, name: str = "kpn-loop") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._runnable: deque = deque()
        self._stopped = False
        self.thread = threading.Thread(target=self._run, name=name,
                                       daemon=True)
        self.thread.start()

    def schedule(self, task: Task) -> None:
        with self._cond:
            if self._stopped:
                return
            self._runnable.append(task)
            self._cond.notify()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._runnable and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                task = self._runnable.popleft()
            try:
                task._resume()
            except BaseException as exc:  # pragma: no cover - defensive
                # a runner bug must not kill the loop and strand every
                # other task; the failing task is marked done
                if task.process.failure is None:
                    task.process.failure = exc
                task._complete()


class LoopPool:
    """Round-robin task placement over ``workers`` event loops."""

    def __init__(self, workers: int = 1, name: str = "kpn-loop") -> None:
        self.workers = max(1, int(workers))
        self.name = name
        self._loops: List[EventLoop] = []
        self._next = 0
        self._lock = threading.Lock()

    def place(self) -> EventLoop:
        """Pick (lazily starting) the loop for one new task."""
        with self._lock:
            if not self._loops or all(l.stopped for l in self._loops):
                self._loops = [
                    EventLoop(name=f"{self.name}-{i}")
                    for i in range(self.workers)
                ]
                self._next = 0
            loop = self._loops[self._next % len(self._loops)]
            self._next += 1
            return loop

    def stop(self) -> None:
        with self._lock:
            loops, self._loops = self._loops, []
        for loop in loops:
            loop.stop()

    @property
    def active(self) -> bool:
        with self._lock:
            return any(not l.stopped for l in self._loops)
