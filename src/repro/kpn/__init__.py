"""Kahn Process Network runtime core (paper section 3).

Layering (bottom → top): :mod:`~repro.kpn.buffers` (bounded blocking byte
pipes) → :mod:`~repro.kpn.streams` (the Figure-3 stream stack) →
:mod:`~repro.kpn.channel` (producer/consumer endpoints, splicing) →
:mod:`~repro.kpn.process` (threaded processes) → :mod:`~repro.kpn.network`
(lifecycle + graph analysis) with :mod:`~repro.kpn.scheduler` providing
Parks' bounded scheduling.  :mod:`~repro.kpn.data` and
:mod:`~repro.kpn.objects` layer typed traffic over byte channels.
"""

from repro.kpn.checker import GraphConsistencyError, Issue, check_network
from repro.kpn.history import HistoryCapture, decode_bytes, infer_codecs
from repro.kpn.tracing import ChannelTrace, TraceReport, Tracer
from repro.kpn.buffers import BlockAccounting, BoundedByteBuffer, DEFAULT_CAPACITY
from repro.kpn.channel import (Channel, ChannelInputStream, ChannelOutputStream,
                               wait_any_readable)
from repro.kpn.data import DataInputStream, DataOutputStream
from repro.kpn.network import Network
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream
from repro.kpn.process import (CompositeProcess, IterativeProcess, Process,
                               StopProcess)
from repro.kpn.scheduler import DeadlockMonitor, DeadlockPolicy, GrowthEvent
from repro.kpn.streams import (BlockingInputStream, InputStream, LocalInputStream,
                               LocalOutputStream, OutputStream,
                               SequenceInputStream, SequenceOutputStream)

__all__ = [
    "FusedChain", "FusionPlan", "compile_network", "fuse",
    "GraphConsistencyError", "Issue", "check_network",
    "HistoryCapture", "decode_bytes", "infer_codecs",
    "ChannelTrace", "TraceReport", "Tracer",
    "BlockAccounting", "BoundedByteBuffer", "DEFAULT_CAPACITY",
    "Channel", "ChannelInputStream", "ChannelOutputStream", "wait_any_readable",
    "DataInputStream", "DataOutputStream",
    "Network",
    "ObjectInputStream", "ObjectOutputStream",
    "CompositeProcess", "IterativeProcess", "Process", "StopProcess",
    "DeadlockMonitor", "DeadlockPolicy", "GrowthEvent",
    "BlockingInputStream", "InputStream", "LocalInputStream",
    "LocalOutputStream", "OutputStream", "SequenceInputStream",
    "SequenceOutputStream",
]

_COMPILE_EXPORTS = {"FusedChain", "FusionPlan", "compile_network", "fuse"}


def __getattr__(name):
    # the graph compiler imports the codec layer, which imports back into
    # repro.kpn — load it lazily to keep this package import-cycle free
    if name in _COMPILE_EXPORTS:
        from repro.kpn import compile as _compile
        return getattr(_compile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
