"""The graph compiler: fuse process chains, collapse channels, pre-size buffers.

The one-thread-per-process, one-ring-per-channel execution model makes
every hop between trivial processes cost a synchronized buffer write, a
blocking read, and often a context switch.  For *linear* regions of the
graph none of that machinery buys anything: a single-producer
single-consumer channel between two determinate step-driven processes is
just a function-call boundary with extra steps.  This module is the
static optimizer that removes those steps while preserving Kahn
semantics — the channel *histories* of the optimized network are the
same as the original's.

Three passes over a constructed (not yet started) :class:`Network`:

1. **Chain fusion** — detect maximal linear chains of eligible processes
   (head: one output; interior: one input, one output; tail: anything)
   and replace each with a :class:`FusedChain`: one thread that runs the
   *tail* stage eagerly and pumps upstream stages one ``step`` at a time
   when an intra-chain read finds its pipe empty.  Intra-chain channels
   keep their :class:`~repro.kpn.channel.Channel` identity (names,
   graph/profiler visibility, history capture) but their ring buffers
   are bypassed by lock-free :class:`collections.deque` pipes — and
   where producer and consumer declare matching fixed-width codecs, the
   encode/decode round trip is skipped entirely and elements pass as
   Python objects.

2. **Channel collapse** — only *intra-chain* channels are bypassed.
   Boundary channels of fused regions keep full Channel semantics, so
   the deadlock monitor, blocked-thread accounting, telemetry, and
   Parks' capacity growth see exactly the graph they expect.

3. **Buffer pre-sizing** — an optional ``{channel: initial_capacity}``
   spec (the capacity advisor's ``repro profile --spec-out`` document)
   grows surviving channels up front, avoiding grow-on-deadlock cycles.

Safety is enforced, not assumed: :func:`repro.analysis.fuse.fusion_blockers`
refuses ``@nondeterminate`` processes, graph-reconfiguring (dynamic)
processes, custom run loops, and shared-state race findings; the planner
additionally refuses remote-pumped channels, pre-seeded buffers, and
chains short-circuited by a side channel.  Every refusal is recorded on
the plan with its reason (``repro compile <target>`` prints them).

The compiler runs strictly *before* ``Network.start()`` — and therefore
before the deadlock monitor arms.  Entry points: :func:`compile_network`
(plan only), :meth:`FusionPlan.apply`, :func:`fuse` (both), and
``Network.run(optimize=True)``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (BrokenChannelError, ChannelClosedError, ChannelError,
                          EndOfStreamError)
from repro.kpn.channel import Channel
from repro.kpn.process import (CompositeProcess, IterativeProcess, Process,
                               StopProcess)
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import Codec, ObjectCodec, StructCodec
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = ["FusionPlan", "FusedChain", "compile_network", "fuse",
           "load_capacity_spec"]


# ---------------------------------------------------------------------------
# fused pipes: the transport that replaces intra-chain ring buffers
# ---------------------------------------------------------------------------

class _FusedPipe:
    """Unbounded single-thread conduit replacing one fused channel's ring.

    Entries are ``bytes`` chunks or ``(object,)`` wrappers (the object
    fast path).  A read that finds the pipe empty *pumps* the upstream
    stage driver — production happens inside the read call, which is
    what lets a whole chain run demand-driven in one thread with no
    locks, no condition variables, and no coroutines.

    Unboundedness cannot introduce deadlock: it only ever *removes*
    write blocking, and the pipe holds at most the run-ahead of single
    pumped steps.  Termination keeps the channel-error protocol of the
    threaded runtime: writing after the reader closed raises
    :class:`BrokenChannelError`; reading after the writer closed drains
    then reports end of stream.
    """

    def __init__(self, channel: Channel,
                 object_codec: Optional[Codec] = None) -> None:
        self.channel = channel
        self.entries: deque = deque()
        self.object_codec = object_codec
        #: the producing stage's driver; wired by FusedChain
        self.upstream = None
        self.write_closed = False
        #: like BoundedByteBuffer._write_aborted: the producer died of a
        #: cascade, so the drained-out end of stream is an error, not EOF
        self.write_aborted = False
        self.read_closed = False
        #: consumer endpoint, used to decode stray byte entries in
        #: object mode through the codec's normal stream reader
        self.reader_endpoint: Optional[InputStream] = None
        #: mirror written bytes into the channel buffer's history so
        #: HistoryCapture sees the same byte stream as an unfused run
        self.record_history = channel.buffer.history is not None

    # -- producer side -----------------------------------------------------
    def write_bytes(self, data) -> None:
        if self.read_closed:
            raise BrokenChannelError(
                f"write to channel {self.channel.name!r} after reader closed")
        if self.write_closed:
            raise ChannelClosedError(
                f"write on closed channel {self.channel.name!r}")
        data = bytes(data)
        if not data:
            return
        if self.record_history:
            self.channel.buffer.record_bytes(data)
        self.entries.append(data)

    def write_object(self, value: Any) -> None:
        if self.read_closed:
            raise BrokenChannelError(
                f"write to channel {self.channel.name!r} after reader closed")
        if self.write_closed:
            raise ChannelClosedError(
                f"write on closed channel {self.channel.name!r}")
        self.entries.append((value,))

    def close_write(self, aborted: bool = False) -> None:
        if not self.write_closed:
            self.write_closed = True
            self.write_aborted = aborted

    def close_read(self) -> None:
        self.read_closed = True
        self.entries.clear()

    # -- consumer side -----------------------------------------------------
    def _fill(self) -> bool:
        """Ensure at least one entry is queued; False at end of stream.

        Empty pipe + live writer = demand: pump the upstream stage one
        step and look again.  The pump either produces, finishes the
        stage (whose ``on_stop`` closes our write side), or blocks in a
        *boundary* channel read — exactly where the producing thread of
        an unfused network would be blocked.
        """
        while not self.entries:
            if self.write_closed:
                if self.write_aborted:
                    raise BrokenChannelError(
                        f"writer of channel {self.channel.name!r} aborted")
                return False
            if self.read_closed:
                raise ChannelClosedError(
                    f"read on closed channel {self.channel.name!r}")
            up = self.upstream
            if up is None:
                return False
            if not up.pump():
                # The stage terminated, and its on_stop ran inside pump():
                # loop so the close it performed is re-examined — a stage
                # killed by a cascade *aborted* our write side, and that
                # abort must surface as BrokenChannelError above, not as a
                # fake EOF (an EOF-tolerant merge downstream would switch
                # to pass-through and emit a timing-dependent tail).
                if self.write_closed:
                    continue
                # on_stop overridden without closing its streams — the
                # threaded runtime would leave the consumer blocked
                # forever; report end of stream instead.
                return False
        return True

    def read(self, max_bytes: int) -> bytes:
        if max_bytes <= 0:
            return b""
        while True:
            if self.entries:
                head = self.entries[0]
                if type(head) is tuple:
                    head = self.object_codec.encode(head[0])
                    self.entries[0] = head
                if len(head) <= max_bytes:
                    self.entries.popleft()
                    return head
                self.entries[0] = head[max_bytes:]
                return head[:max_bytes]
            if not self._fill():
                return b""

    def readinto(self, target) -> int:
        view = memoryview(target).cast("B")
        n = len(view)
        while True:
            if self.entries:
                head = self.entries[0]
                if type(head) is tuple:
                    head = self.object_codec.encode(head[0])
                    self.entries[0] = head
                k = len(head)
                if k <= n:
                    view[:k] = head
                    self.entries.popleft()
                    return k
                view[:] = head[:n]
                self.entries[0] = head[n:]
                return n
            if not self._fill():
                return 0

    def read_object(self) -> Any:
        while True:
            if self.entries:
                if type(self.entries[0]) is tuple:
                    return self.entries.popleft()[0]
                # byte entries (producer bypassed the fast path): decode
                # through the codec's ordinary stream reader, which pulls
                # from this pipe via the consumer endpoint
                return self.object_codec.read(self.reader_endpoint)
            if not self._fill():
                raise EndOfStreamError("end of stream")

    def available(self) -> int:
        total = 0
        width = self.object_codec.width if self.object_codec else None
        for e in self.entries:
            if type(e) is tuple:
                total += width if width else 1
            else:
                total += len(e)
        return total

    def at_eof(self) -> bool:
        return self.write_closed and not self.entries


class _PipeOutput(OutputStream):
    """Adapter installed under a fused channel's SequenceOutputStream."""

    def __init__(self, pipe: _FusedPipe) -> None:
        self.pipe = pipe

    def write(self, data) -> None:
        self.pipe.write_bytes(data)

    def write_vectored(self, chunks) -> None:
        for c in chunks:
            self.pipe.write_bytes(c)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.pipe.close_write()

    def abort(self) -> None:
        self.pipe.close_write(aborted=True)


class _PipeInput(InputStream):
    """Adapter installed at the head of a fused channel's input sequence."""

    def __init__(self, pipe: _FusedPipe) -> None:
        self.pipe = pipe

    def read(self, max_bytes: int) -> bytes:
        return self.pipe.read(max_bytes)

    def readinto(self, target) -> int:
        return self.pipe.readinto(target)

    def read_view(self, max_bytes: int) -> memoryview:
        return memoryview(self.pipe.read(max_bytes))

    def close(self) -> None:
        self.pipe.close_read()

    def available(self) -> int:
        return self.pipe.available()

    def at_eof(self) -> bool:
        return self.pipe.at_eof()


class _CodecShim(Codec):
    """Transparent stand-in for a fused stage's codec attribute.

    When the endpoint being written/read is backed by an object-mode
    fused pipe carrying *this* codec's elements, skip the encode/decode
    round trip and move the object itself; otherwise delegate to the
    wrapped codec unchanged (boundary channels, byte-mode pipes, history
    decoding).  Identity with the pipe's codec is what makes the fast
    path safe: a pipe only ever tags the codec instance its producer
    writes with.
    """

    def __init__(self, inner: Codec) -> None:
        self._inner = inner
        self.width = inner.width

    def write(self, out, value) -> None:
        pipe = getattr(out, "_fused_pipe", None)
        if pipe is not None and pipe.object_codec is self._inner:
            pipe.write_object(value)
        else:
            self._inner.write(out, value)

    def read(self, source) -> Any:
        pipe = getattr(source, "_fused_pipe", None)
        if pipe is not None and pipe.object_codec is self._inner:
            return pipe.read_object()
        return self._inner.read(source)

    def encode(self, value) -> bytes:
        return self._inner.encode(value)

    def __reduce__(self):
        # pickling (e.g. a capacity-advisor report referencing a stage)
        # resolves back to the wrapped codec
        return self._inner.__reduce__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<_CodecShim {self._inner!r}>"


# ---------------------------------------------------------------------------
# fused execution: one thread, demand-driven stages
# ---------------------------------------------------------------------------

class _StageDriver:
    """Runs one fused stage's on_start/step/on_stop protocol inline.

    Mirrors :meth:`IterativeProcess.run` — iteration limits,
    ``StopProcess``, channel-error termination, failure capture, and the
    per-stage telemetry span — minus the thread (and minus live-migration
    pause points: fused stages are not migratable).
    """

    def __init__(self, stage: IterativeProcess) -> None:
        self.stage = stage
        self.started = False
        self.finished = False
        self.reason = "limit"
        self._traced = False

    def pump(self) -> bool:
        """Run one step of the stage; False once it has terminated."""
        if self.finished:
            return False
        st = self.stage
        try:
            if not self.started:
                self.started = True
                self._traced = _telemetry.enabled
                if self._traced:
                    _telemetry.begin(st.name, category="kpn.process",
                                     kind=type(st).__name__, fused=True,
                                     process=st.name)
                    _telemetry.inc("kpn.process.started")
                if not st._live_migrated:
                    st.on_start()
            if 0 < st.iterations <= st.steps_completed:
                self._finish("limit")
                return False
            st.step()
            st.steps_completed += 1
            return True
        except StopProcess:
            self._finish("stop")
        except ChannelError as exc:
            # mirror IterativeProcess.run: a broken/closed channel is a
            # cascade — abort the stage's outputs rather than close them
            if isinstance(exc, (BrokenChannelError, ChannelClosedError)):
                st._abort_on_close = True
            self._finish("channel-closed")
        except Exception as exc:  # noqa: BLE001 - mirror IterativeProcess.run
            st.failure = exc
            self._finish("failure")
        return False

    def drive(self) -> None:
        """Run the stage to completion (tail stage / finish cascade)."""
        while self.pump():
            pass

    def _finish(self, reason: str) -> None:
        self.finished = True
        self.reason = reason
        st = self.stage
        try:
            st.on_stop()
        except ChannelError:
            pass
        except Exception as exc:  # noqa: BLE001 - keep the cascade alive
            if st.failure is None:
                st.failure = exc
        if self._traced:
            _telemetry.end(st.name, category="kpn.process", reason=reason,
                           steps=st.steps_completed, process=st.name)
            _telemetry.inc("kpn.process.terminated", 1, reason=reason)


class FusedChain(CompositeProcess):
    """One thread driving a fused chain of stages by direct calls.

    A CompositeProcess subclass so graph export, the consistency
    checker, and the analysis passes still see the member stages — but
    ``run`` replaces thread-per-member execution with the demand-driven
    loop: the tail stage runs eagerly; empty intra-chain pipes pump
    their upstream stage from inside the read.  Stages are then finished
    tail-to-head, so closing streams cascades termination exactly as it
    would across threads.
    """

    def __init__(self, stages: Sequence[IterativeProcess],
                 pipes: Sequence[_FusedPipe],
                 name: Optional[str] = None) -> None:
        super().__init__(stages,
                         name=name or "fused:" + "+".join(s.name
                                                          for s in stages))
        self.pipes: List[_FusedPipe] = list(pipes)
        self.drivers: List[_StageDriver] = [_StageDriver(s) for s in stages]
        # pipe i carries stage i -> stage i+1
        for pipe, driver in zip(self.pipes, self.drivers):
            pipe.upstream = driver

    @property
    def channel_names(self) -> List[str]:
        return [p.channel.name for p in self.pipes]

    def run(self) -> None:
        traced = _telemetry.enabled
        if traced:
            _telemetry.begin(self.name, category="kpn.process",
                             kind="FusedChain", members=len(self.processes),
                             process=self.name)
        try:
            for driver in reversed(self.drivers):
                driver.drive()
        finally:
            failures = [p for p in self.processes if p.failure is not None]
            if failures:
                self.failure = failures[0].failure
            if traced:
                _telemetry.end(self.name, category="kpn.process",
                               failures=len(failures), process=self.name)


# ---------------------------------------------------------------------------
# capacity specs (pass 3)
# ---------------------------------------------------------------------------

def load_capacity_spec(spec) -> Dict[str, int]:
    """Normalize a capacity spec to ``{channel_name: capacity_bytes}``.

    Accepts a flat ``{name: capacity}`` dict, the full capacity-advisor
    document (``{"version": 1, "channels": {name: {"initial_capacity":
    N, ...}}}`` as written by ``repro profile --spec-out``), or a path
    to a JSON file of either shape.  ``None`` means no spec.
    """
    if spec is None:
        return {}
    if isinstance(spec, (str, bytes)):
        with open(spec) as fh:
            spec = json.load(fh)
    if not isinstance(spec, dict):
        raise TypeError(f"capacity spec must be a dict or a JSON file path, "
                        f"got {type(spec).__name__}")
    entries = spec
    channels = spec.get("channels")
    if isinstance(channels, dict) and ("version" in spec
                                       or "network" in spec
                                       or all(isinstance(v, dict)
                                              for v in channels.values())):
        entries = channels
    out: Dict[str, int] = {}
    for name, value in entries.items():
        if isinstance(value, dict):
            value = value.get("initial_capacity")
        if value is None:
            continue
        out[str(name)] = int(value)
    return out


# ---------------------------------------------------------------------------
# planning (passes 1 and 2)
# ---------------------------------------------------------------------------

class FusionPlan:
    """The compiler's output: chains to fuse, refusals, capacity spec.

    Produced by :func:`compile_network`; inert until :meth:`apply` swaps
    the fused chains into the network.  ``describe()`` renders the plan
    the way ``repro compile`` prints it; ``to_dict()`` is the
    machine-readable form.
    """

    def __init__(self, network,
                 chains: List[Tuple[List[Process], List[Channel],
                                    List[Optional[Codec]], Any]],
                 refusals: List[Tuple[str, str]],
                 spec: Dict[str, int]) -> None:
        self.network = network
        #: (stages, intra-chain channels, per-channel object codec or
        #: None, direct container of every stage)
        self.chains = chains
        #: (subject, reason) — processes/chains that must keep threads
        self.refusals = refusals
        self.spec = spec
        self.applied = False
        self.fused: List[FusedChain] = []
        #: (channel, old capacity, new capacity) applied by pass 3
        self.presized: List[Tuple[str, int, int]] = []

    # -- reporting ---------------------------------------------------------
    @property
    def fused_channel_names(self) -> List[str]:
        return [ch.name for _, chans, _, _ in self.chains for ch in chans]

    def process_counts(self) -> Tuple[int, int]:
        before = len(self.network._leaf_processes())
        fused_away = sum(len(stages) - 1 for stages, _, _, _ in self.chains)
        return before, before - fused_away

    def to_dict(self) -> dict:
        before, after = self.process_counts()
        return {
            "network": self.network.name,
            "threads_before": before,
            "threads_after": after,
            "chains": [{
                "stages": [s.name for s in stages],
                "channels": [ch.name for ch in chans],
                "object_channels": [ch.name for ch, oc in zip(chans, codecs)
                                    if oc is not None],
            } for stages, chans, codecs, _ in self.chains],
            "refusals": [{"subject": s, "reason": r}
                         for s, r in self.refusals],
            "capacity_spec": dict(self.spec),
            "presized": [{"channel": c, "old": o, "new": n}
                         for c, o, n in self.presized],
            "applied": self.applied,
        }

    def describe(self) -> str:
        before, after = self.process_counts()
        lines = [f"fusion plan for network {self.network.name!r}: "
                 f"{len(self.chains)} chain(s), "
                 f"{before} -> {after} thread(s)"]
        for i, (stages, chans, codecs, _) in enumerate(self.chains, start=1):
            arrow = " -> ".join(s.name for s in stages)
            parts = [f"{ch.name}[{'objects' if oc is not None else 'bytes'}]"
                     for ch, oc in zip(chans, codecs)]
            lines.append(f"  chain {i}: {arrow}")
            lines.append(f"           collapsed: {', '.join(parts)}")
        if self.refusals:
            lines.append("  kept threaded:")
            for subject, reason in self.refusals:
                lines.append(f"    - {subject}: {reason}")
        if self.spec:
            lines.append(f"  capacity spec: {len(self.spec)} channel(s)"
                         + (f", {len(self.presized)} grown"
                            if self.applied else ""))
        return "\n".join(lines)

    # -- application -------------------------------------------------------
    def apply(self):
        """Rewire the network in place; returns the network.

        Each chain's intra channels get deque transports under their
        existing endpoints (Channel objects and names are preserved for
        the profiler, ``repro top``, and history capture), the stages
        are replaced by one :class:`FusedChain` in their container, and
        the capacity spec is applied to every surviving channel.
        """
        if self.applied:
            return self.network
        net = self.network
        shim_cache: Dict[int, Tuple[Codec, _CodecShim]] = {}
        for stages, chans, codecs, container in self.chains:
            pipes: List[_FusedPipe] = []
            for ch, ocodec in zip(chans, codecs):
                pipe = _FusedPipe(ch, object_codec=ocodec)
                out_ep = ch.get_output_stream()
                out_ep.sequence.switch_to(_PipeOutput(pipe))
                in_ep = ch.get_input_stream()
                in_ep.sequence.replace_head(_PipeInput(pipe))
                pipe.reader_endpoint = in_ep
                if ocodec is not None:
                    out_ep._fused_pipe = pipe
                    in_ep._fused_pipe = pipe
                ch.fused = True
                pipes.append(pipe)
            if any(oc is not None for oc in codecs):
                for stage in stages:
                    _install_codec_shims(stage, shim_cache)
            chain = FusedChain(stages, pipes)
            chain.network = net
            members = (net.processes if container is net
                       else container.processes)
            idx = min(members.index(s) for s in stages)
            for s in stages:
                members.remove(s)
            members.insert(idx, chain)
            self.fused.append(chain)
            if _telemetry.enabled:
                _telemetry.instant("compile.fuse", category="kpn.compile",
                                   chain=chain.name,
                                   stages=len(stages),
                                   channels=",".join(chain.channel_names))
        fused_names = set(self.fused_channel_names)
        for name, cap in self.spec.items():
            ch = net.channel_by_name(name)
            if ch is None or name in fused_names:
                continue
            old = ch.capacity
            if cap > old:
                ch.grow(cap, process="compile")
                self.presized.append((name, old, cap))
        if _telemetry.enabled:
            _telemetry.inc("kpn.compile.chains", len(self.chains))
            _telemetry.inc("kpn.compile.channels_collapsed",
                           len(fused_names))
        self.applied = True
        net.fusion_plan = self
        return net


def _install_codec_shims(stage: Process,
                         cache: Dict[int, Tuple[Codec, _CodecShim]]) -> None:
    for attr, value in list(vars(stage).items()):
        if isinstance(value, Codec) and not isinstance(value, _CodecShim):
            entry = cache.get(id(value))
            if entry is None:
                entry = (value, _CodecShim(value))
                cache[id(value)] = entry
            setattr(stage, attr, entry[1])


def _container_map(network) -> Dict[int, Any]:
    """id(leaf process) -> the object whose .processes list runs it."""
    containers: Dict[int, Any] = {}

    def visit(container, procs) -> None:
        for p in procs:
            if isinstance(p, CompositeProcess):
                visit(p, p.processes)
            else:
                containers[id(p)] = container
    visit(network, network.processes)
    return containers


def _write_codec(stage: Process) -> Optional[Codec]:
    codec = getattr(stage, "out_codec", None) or getattr(stage, "codec", None)
    return codec if isinstance(codec, Codec) else None


def _read_codec(stage: Process) -> Optional[Codec]:
    codec = getattr(stage, "codec", None)
    return codec if isinstance(codec, Codec) else None


def _object_codec_for(producer: Process, channel: Channel,
                      consumer: Process, share_objects: bool
                      ) -> Optional[Codec]:
    """The codec to move elements as objects over this edge, or None.

    The fast path needs proof that every byte crossing the channel is
    one whole element of one agreed codec:

    * history capture must be off for the channel (histories are byte
      streams; recording them requires the encode anyway);
    * the producer's write codec (``out_codec``/``codec`` convention)
      and the consumer's read codec must agree;
    * the consumer must have exactly one input — multi-input stages can
      read a side input through a codec the planner cannot see (Guard's
      module-level BOOL control read);
    * fixed-width struct codecs carry immutable scalars, so sharing the
      decoded object is always safe; pickle codecs share mutable object
      graphs the unfused network would have *copied*, so they stay on
      the byte path unless ``share_objects`` opts in.
    """
    if channel.buffer.history is not None:
        return None
    w = _write_codec(producer)
    r = _read_codec(consumer)
    if w is None or r is None or type(w) is not type(r):
        return None
    if len(consumer.input_streams) != 1:
        return None
    if isinstance(w, StructCodec):
        return w if w._struct.format == r._struct.format else None
    if isinstance(w, ObjectCodec) and share_objects:
        return w
    return None


def compile_network(network, spec=None, object_passing: bool = True,
                    share_objects: bool = False) -> FusionPlan:
    """Plan chain fusion and buffer pre-sizing for ``network``.

    Returns a :class:`FusionPlan` (not yet applied).  ``spec`` is a
    capacity spec accepted by :func:`load_capacity_spec`.
    ``object_passing=False`` forces every fused pipe onto the byte path;
    ``share_objects=True`` extends the object fast path to pickle
    codecs (safe only if consumers do not mutate received objects).
    """
    from repro.analysis.fuse import fusion_blockers

    if network._started:
        raise RuntimeError("compile_network must run before Network.start()")
    blockers = fusion_blockers(network)
    containers = _container_map(network)
    leaves = network._leaf_processes()

    producer: Dict[str, Process] = {}
    consumer: Dict[str, Process] = {}
    out_chs: Dict[int, List[Channel]] = {}
    in_chs: Dict[int, List[Channel]] = {}
    loose_outs: Dict[int, int] = {}
    loose_ins: Dict[int, int] = {}
    for p in leaves:
        seen_out: Dict[int, Channel] = {}
        seen_in: Dict[int, Channel] = {}
        for s in p.output_streams:
            ch = getattr(s, "channel", None)
            if ch is None:
                loose_outs[id(p)] = loose_outs.get(id(p), 0) + 1
            else:
                seen_out[id(ch)] = ch
                producer[ch.name] = p
        for s in p.input_streams:
            ch = getattr(s, "channel", None)
            if ch is None:
                loose_ins[id(p)] = loose_ins.get(id(p), 0) + 1
            else:
                seen_in[id(ch)] = ch
                consumer[ch.name] = p
        out_chs[id(p)] = list(seen_out.values())
        in_chs[id(p)] = list(seen_in.values())

    def fusable(p: Process) -> bool:
        return p.name not in blockers

    def channel_ok(ch: Channel) -> bool:
        return (ch.buffer.available() == 0
                and getattr(ch, "receiver_pump", None) is None
                and getattr(ch, "sender_pump", None) is None)

    # A -> B links: A has exactly one (channel-backed) output, both ends
    # are fusable and live in the same container.
    link: Dict[int, Tuple[Channel, Process]] = {}
    preds: Dict[int, Process] = {}
    through_ok: Dict[int, bool] = {}
    by_id: Dict[int, Process] = {id(p): p for p in leaves}
    for p in leaves:
        through_ok[id(p)] = (fusable(p) and len(in_chs[id(p)]) == 1
                             and not loose_ins.get(id(p)))
        if not fusable(p):
            continue
        outs = out_chs[id(p)]
        if len(outs) != 1 or loose_outs.get(id(p)):
            continue
        ch = outs[0]
        q = consumer.get(ch.name)
        if (q is None or q is p or not fusable(q)
                or not channel_ok(ch)
                or containers.get(id(p)) is not containers.get(id(q))):
            continue
        link[id(p)] = (ch, q)
        preds[id(q)] = p

    visited: set = set()
    raw_chains: List[Tuple[List[Process], List[Channel]]] = []

    def walk(start: Process) -> None:
        stages = [start]
        edges: List[Channel] = []
        visited.add(id(start))
        cur = start
        while id(cur) in link:
            ch, nxt = link[id(cur)]
            if id(nxt) in visited:
                break
            edges.append(ch)
            stages.append(nxt)
            visited.add(id(nxt))
            if not through_ok.get(id(nxt), False):
                break
            cur = nxt
        if len(stages) >= 2:
            raw_chains.append((stages, edges))
        else:
            visited.discard(id(start))

    # pass 1: natural heads (no incoming link, or cannot sit mid-chain);
    # pass 2: middles orphaned when their predecessor joined another chain
    for p in leaves:
        if id(p) in visited or id(p) not in link:
            continue
        if id(p) not in preds or not through_ok.get(id(p), False):
            walk(p)
    for p in leaves:
        if id(p) not in visited and id(p) in link:
            walk(p)

    refusals: List[Tuple[str, str]] = sorted(blockers.items())
    chains: List[Tuple[List[Process], List[Channel],
                       List[Optional[Codec]], Any]] = []
    for stages, edges in raw_chains:
        member_ids = {id(s) for s in stages}
        edge_ids = {id(ch) for ch in edges}
        side = next((ch for ch in network.channels
                     if id(ch) not in edge_ids
                     and id(producer.get(ch.name, _MISSING)) in member_ids
                     and id(consumer.get(ch.name, _MISSING)) in member_ids),
                    None)
        if side is not None:
            refusals.append((" -> ".join(s.name for s in stages),
                             f"side channel {side.name!r} connects two chain "
                             f"members outside the chain (fusing would "
                             f"detach it from the deadlock monitor)"))
            for s in stages:
                visited.discard(id(s))
            continue
        codecs: List[Optional[Codec]] = []
        for ch, a, b in zip(edges, stages, stages[1:]):
            oc = (_object_codec_for(a, ch, b, share_objects)
                  if object_passing else None)
            codecs.append(oc)
        chains.append((stages, edges, codecs, containers[id(stages[0])]))

    return FusionPlan(network, chains, refusals, load_capacity_spec(spec))


class _Missing:
    pass


_MISSING = _Missing()


def fuse(network, spec=None, object_passing: bool = True,
         share_objects: bool = False) -> FusionPlan:
    """Compile and apply in one call; returns the applied plan."""
    plan = compile_network(network, spec=spec, object_passing=object_passing,
                           share_objects=share_objects)
    plan.apply()
    return plan
