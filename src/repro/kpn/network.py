"""Network: lifecycle management for a graph of processes and channels.

The paper constructs a graph, wraps it in a ``CompositeProcess`` and calls
``new Thread(p).start()`` (Figure 6).  :class:`Network` is the slightly
richer equivalent this library uses as its main entry point: it

* creates channels that share one blocked-thread accounting object;
* starts one daemon thread per process (including processes spawned
  dynamically by self-reconfiguring graphs, which inherit the network
  through :meth:`repro.kpn.process.Process.spawn`);
* optionally runs the :class:`~repro.kpn.scheduler.DeadlockMonitor`
  implementing Parks' bounded scheduling;
* joins everything and surfaces process failures and deadlock diagnoses;
* can export the program graph to :mod:`networkx` for analysis (the
  paper's claim that default capacities suffice "for all programs with no
  *undirected* cycles" is checkable with :meth:`has_undirected_cycle`).

Typical use::

    net = Network()
    ch = net.channel()
    net.add(Sequence(ch.get_output_stream(), start=2, iterations=99))
    net.add(Collect(ch.get_input_stream(), out := []))
    net.run()          # start + join; raises on process failure
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterable, List, Optional

from repro.errors import DeadlockError
from repro.kpn.buffers import BlockAccounting, DEFAULT_CAPACITY
from repro.kpn.channel import Channel
from repro.kpn.process import CompositeProcess, Process
from repro.kpn.scheduler import DeadlockMonitor, DeadlockPolicy

__all__ = ["Network", "BACKENDS", "resolve_backend"]

#: scheduler backends: "thread" is the paper's one-OS-thread-per-process
#: reference; "async" multiplexes cooperative tasks over event loops
#: (see :mod:`repro.kpn.aio`) for 10k+-process graphs.
BACKENDS = ("thread", "async")


def resolve_backend(backend: Optional[str]) -> str:
    """Explicit argument > ``REPRO_BACKEND`` env > ``"thread"``."""
    choice = backend or os.environ.get("REPRO_BACKEND") or "thread"
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown scheduler backend {choice!r}; pick one of {BACKENDS}")
    return choice


class Network:
    """A running (or runnable) process-network program graph.

    Parameters
    ----------
    bounded:
        Enable the deadlock monitor / Parks bounded scheduling.  Defaults
        to True — the paper's implementation always has bounded channels;
        disable only for experiments.
    default_capacity:
        Initial capacity for channels created via :meth:`channel`.
    policy:
        Deadlock policy (growth factor, caps, true-deadlock reaction).
    capacity_spec:
        Optional ``{channel_name: initial_capacity}`` spec — a flat
        dict, the capacity advisor's ``repro profile --spec-out``
        document, or a path to a JSON file of either shape.  Channels
        created via :meth:`channel` with a name in the spec (and no
        explicit capacity) start pre-sized, avoiding grow-on-deadlock
        cycles even without the graph compiler.
    backend:
        Scheduler backend: ``"thread"`` (default; one OS thread per
        process, the paper's model) or ``"async"`` (cooperative tasks
        multiplexed over event loops — see :mod:`repro.kpn.aio`).
        ``None`` consults the ``REPRO_BACKEND`` environment variable.
        Processes the async runtime cannot host (custom ``run`` loops,
        ``@nondeterminate`` processes) transparently keep their own
        thread; the two actor kinds share channels freely.
    workers:
        Event-loop threads for the async backend (ignored under
        ``"thread"``).  One loop per core is plenty: tasks are
        cooperative, so loops only buy parallelism, not concurrency.
    """

    def __init__(self, bounded: bool = True,
                 default_capacity: int = DEFAULT_CAPACITY,
                 policy: Optional[DeadlockPolicy] = None,
                 name: str = "network",
                 capacity_spec=None,
                 backend: Optional[str] = None,
                 workers: int = 1) -> None:
        self.name = name
        self.backend = resolve_backend(backend)
        self._loops = None
        if self.backend == "async":
            from repro.kpn.aio import LoopPool
            self._loops = LoopPool(workers, name=f"{name}-loop")
        self.default_capacity = default_capacity
        if capacity_spec:
            from repro.kpn.compile import load_capacity_spec
            self.capacity_spec = load_capacity_spec(capacity_spec)
        else:
            self.capacity_spec = {}
        self.accounting = BlockAccounting(on_change=self._kick_monitor)
        self.channels: List[Channel] = []
        self.processes: List[Process] = []
        # identity set shadowing ``processes`` — membership checks on the
        # 10k-process spawn path must not scan the list (O(n^2) startup).
        # Safe because the list is append-only: every id in the set keeps
        # its object alive via the list, so ids are never recycled.
        self._process_ids: set = set()
        self._threads: List[threading.Thread] = []
        self._lock = threading.RLock()
        self._started = False
        self.fusion_plan = None
        self.monitor: Optional[DeadlockMonitor] = None
        if bounded:
            self.monitor = DeadlockMonitor(self, policy)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def channel(self, capacity: Optional[int] = None, name: str = "") -> Channel:
        """Create a channel owned by (and accounted to) this network.

        With no explicit ``capacity``, a named channel listed in the
        network's ``capacity_spec`` starts at the spec'd size.
        """
        if capacity is None and name:
            capacity = self.capacity_spec.get(name)
        ch = Channel(capacity or self.default_capacity, name=name,
                     accounting=self.accounting)
        with self._lock:
            self.channels.append(ch)
        return ch

    def channels_n(self, n: int, capacity: Optional[int] = None,
                   prefix: str = "ch") -> List[Channel]:
        return [self.channel(capacity, name=f"{prefix}-{i}") for i in range(n)]

    def adopt_channel(self, ch: Channel) -> Channel:
        """Bring an externally created channel under this network."""
        ch.set_accounting(self.accounting)
        with self._lock:
            if ch not in self.channels:
                self.channels.append(ch)
        return ch

    def add(self, process: Process) -> Process:
        """Register a process (started later by :meth:`start`)."""
        process.network = self
        if isinstance(process, CompositeProcess):
            for member in process.processes:
                member.network = self
        with self._lock:
            if id(process) not in self._process_ids:
                self._process_ids.add(id(process))
                self.processes.append(process)
        return process

    def add_all(self, processes: Iterable[Process]) -> None:
        for p in processes:
            self.add(p)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def spawn(self, process: Process):
        """Start ``process`` immediately as a tracked actor.

        Under the thread backend (and for processes the async runtime
        cannot host) the actor is a daemon thread; under the async
        backend, hostable processes become cooperative tasks on one of
        the network's event loops.  Either way the returned handle
        supports ``join``/``is_alive``/``name``.  Used both by
        :meth:`start` and by running processes that insert new processes
        into the graph (Sift, MetaDynamic reconfiguration).
        """
        process.network = self
        if isinstance(process, CompositeProcess):
            for member in process.processes:
                member.network = self
        actor = None
        if self._loops is not None:
            from repro.kpn.aio import Task, async_hostable
            if async_hostable(process):
                actor = Task(process, self._loops.place(),
                             on_finish=self._kick_monitor)
        if actor is None:
            actor = threading.Thread(target=self._run_process,
                                     args=(process,),
                                     name=process.name, daemon=True)
        with self._lock:
            self._threads.append(actor)
            # identity-set membership, not a list scan: spawn() runs once
            # per process and a linear check makes startup O(n^2)
            if id(process) not in self._process_ids:
                self._process_ids.add(id(process))
                self.processes.append(process)
        actor.start()
        return actor

    def _run_process(self, process: Process) -> None:
        try:
            process.run()
        finally:
            self._kick_monitor()

    def preflight(self) -> None:
        """Static pre-flight: graph consistency, proofs, and race scan.

        Runs :func:`repro.kpn.checker.check_network` in strict mode —
        which includes the directed-cycle deadlock/boundedness proofs —
        and the shared-state race detector, raising
        :class:`~repro.kpn.checker.GraphConsistencyError` on any error.
        Opt-in via ``start(lint=True)`` / ``run(lint=True)``.
        """
        from repro.analysis.races import detect_races
        from repro.kpn.checker import GraphConsistencyError, Issue, check_network

        issues = [i for i in check_network(self) if i.severity == "error"]
        for race in detect_races(self):
            issues.append(Issue("error", "shared-state", race.describe()))
        if issues:
            raise GraphConsistencyError(issues)

    def optimize(self, spec=None, **kwargs) -> "Network":
        """Run the graph compiler over this network (before :meth:`start`).

        Fuses eligible linear process chains into single threads,
        collapses the intra-chain channels onto lock-free deques, and
        pre-sizes surviving channels from ``spec`` (defaulting to the
        network's own ``capacity_spec``).  The applied
        :class:`~repro.kpn.compile.FusionPlan` lands on
        ``self.fusion_plan``.  See :mod:`repro.kpn.compile`.
        """
        from repro.kpn.compile import fuse

        if spec is None and self.capacity_spec:
            spec = self.capacity_spec
        fuse(self, spec=spec, **kwargs)
        return self

    def start(self, lint: bool = False, optimize: bool = False) -> "Network":
        if lint:
            self.preflight()
        if optimize:
            self.optimize()
        with self._lock:
            if self._started:
                raise RuntimeError("network already started")
            self._started = True
            pending = [p for p in self.processes]
        if self.monitor is not None:
            self.monitor.start()
        with self._lock:
            spawned = {t.name for t in self._threads}
        for p in pending:
            # set membership, not a linear scan: start() is on the
            # 10k-process scale path and a per-process scan is O(n^2)
            if p.name not in spawned:
                spawned.add(p.name)
                self.spawn(p)
        return self

    def ensure_running(self) -> "Network":
        """Mark the network live without spawning anything yet.

        Compute servers host a long-lived network that receives migrated
        processes over time; this starts the deadlock monitor and allows
        :meth:`spawn` to be the only way processes enter.
        """
        with self._lock:
            if self._started:
                return self
            self._started = True
        if self.monitor is not None:
            self.monitor.start()
        return self

    def live_threads(self) -> List:
        """Process actors (threads and tasks) still alive (monitor's view)."""
        with self._lock:
            return [t for t in self._threads if t.is_alive()]

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every process thread (including late-spawned ones).

        Returns True if everything finished.  Raises the first process
        failure or a stored deadlock diagnosis after shutdown.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                threads = list(self._threads)
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                with self._lock:
                    grown = len(threads) != len(self._threads)
                if not grown:
                    break
                continue
            for t in alive:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                t.join(timeout=remaining if remaining is not None else 0.5)
                if deadline is not None and time.monotonic() >= deadline and t.is_alive():
                    return False
        if self.monitor is not None:
            self.monitor.stop()
            if self.monitor.error is not None:
                raise self.monitor.error
        if self._loops is not None:
            self._loops.stop()
        self.raise_failures()
        return True

    def run(self, timeout: Optional[float] = None, lint: bool = False,
            optimize: bool = False) -> bool:
        """``start()`` + ``join()``; the one-liner most programs need.

        ``optimize=True`` runs the graph compiler (chain fusion, channel
        collapse, buffer pre-sizing) before starting threads.
        """
        self.start(lint=lint, optimize=optimize)
        return self.join(timeout=timeout)

    def raise_failures(self) -> None:
        for p in self.processes:
            if p.failure is not None and not isinstance(p.failure, DeadlockError):
                raise p.failure

    def shutdown(self) -> None:
        """Force-terminate: close every channel both ways.

        Blocked processes wake with channel errors and run their normal
        ``on_stop`` cleanup, so even a forced shutdown follows the paper's
        graceful cascading-termination path.
        """
        with self._lock:
            channels = list(self.channels)
        for ch in channels:
            try:
                ch.buffer.close_write()
                ch.buffer.close_read()
            except Exception:
                pass

    def _kick_monitor(self) -> None:
        if self.monitor is not None:
            self.monitor.kick()

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Network":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.shutdown()
        if self.monitor is not None:
            self.monitor.stop()
        if self._loops is not None and not any(
                t.is_alive() for t in self._threads):
            self._loops.stop()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def _leaf_processes(self) -> List[Process]:
        leaves: List[Process] = []
        for p in self.processes:
            if isinstance(p, CompositeProcess):
                leaves.extend(p.flatten())
            else:
                leaves.append(p)
        return leaves

    def graph(self):
        """Export the program graph as a ``networkx.MultiDiGraph``.

        Nodes are process names; edges are channels from producer to
        consumer, discovered by matching tracked endpoint streams back to
        their channels.
        """
        import networkx as nx

        g = nx.MultiDiGraph()
        producers: dict[str, str] = {}
        consumers: dict[str, str] = {}
        for p in self._leaf_processes():
            g.add_node(p.name, process=type(p).__name__)
            for s in p.output_streams:
                ch = getattr(s, "channel", None)
                if ch is not None:
                    producers[ch.name] = p.name
            for s in p.input_streams:
                ch = getattr(s, "channel", None)
                if ch is not None:
                    consumers[ch.name] = p.name
        for ch in self.channels:
            src = producers.get(ch.name)
            dst = consumers.get(ch.name)
            if src is not None and dst is not None:
                g.add_edge(src, dst, channel=ch.name, capacity=ch.capacity)
        return g

    def channel_map(self) -> dict:
        """Producer/consumer names per channel, as a plain dict.

        The profiler's analyzer wants exactly the edge information
        :meth:`graph` computes, but as a picklable structure with no
        networkx dependency: ``{channel: {"producer", "consumer",
        "capacity"}}`` (either end ``None`` when untracked, e.g. a channel
        stretched to another server).
        """
        producers: dict[str, str] = {}
        consumers: dict[str, str] = {}
        for p in self._leaf_processes():
            for s in p.output_streams:
                ch = getattr(s, "channel", None)
                if ch is not None:
                    producers[ch.name] = p.name
            for s in p.input_streams:
                ch = getattr(s, "channel", None)
                if ch is not None:
                    consumers[ch.name] = p.name
        with self._lock:
            channels = list(self.channels)
        return {ch.name: {"producer": producers.get(ch.name),
                          "consumer": consumers.get(ch.name),
                          "capacity": ch.capacity}
                for ch in channels}

    def has_undirected_cycle(self) -> bool:
        """True if the program graph has an undirected cycle.

        Relevant to section 3.5: default buffer capacities are "sufficient
        for ... all programs with no undirected cycles"; graphs *with*
        undirected cycles (Figures 12 and 13) may need capacity growth.
        """
        import networkx as nx

        g = self.graph().to_undirected(as_view=False)
        simple = nx.Graph()
        multi_edges = 0
        for u, v in g.edges():
            if u == v or simple.has_edge(u, v):
                multi_edges += 1
            else:
                simple.add_edge(u, v)
        if multi_edges:
            return True
        try:
            nx.find_cycle(simple)
            return True
        except nx.NetworkXNoCycle:
            return False

    def wait_snapshot(self) -> dict:
        """Blocking-state snapshot for distributed deadlock detection.

        Serializable summary of who is blocked where, plus the accounting
        generation so a coordinator can verify stability between two
        observations (section 6.2's "distributed deadlock detection
        algorithm" needs exactly this per-site information).
        """
        blocked_map = self.accounting.snapshot()
        live = self.live_threads()
        live_names = [t.name for t in live]
        blocked = []
        for actor, (buffer, mode) in blocked_map.items():
            if actor in live:
                blocked.append({
                    "thread": actor.name,
                    "kind": ("thread" if isinstance(actor, threading.Thread)
                             else "task"),
                    "mode": mode,
                    "channel": buffer.name,
                    "capacity": buffer.capacity,
                    "buffered": buffer.available(),
                })
        with self._lock:
            remote = [ch.name for ch in self.channels
                      if getattr(ch, "receiver_pump", None) is not None
                      or getattr(ch, "sender_pump", None) is not None]
        return {
            "network": self.name,
            "backend": self.backend,
            "generation": self.accounting.generation,
            "live": live_names,
            "blocked": blocked,
            "remote_links": remote,
        }

    def channel_by_name(self, name: str) -> Optional[Channel]:
        with self._lock:
            for ch in self.channels:
                if ch.name == name:
                    return ch
        return None

    def grow_channel(self, name: str, new_capacity: int) -> bool:
        """Grow a channel by name (remote-resolution hook); False if the
        channel is unknown here."""
        ch = self.channel_by_name(name)
        if ch is None:
            return False
        ch.grow(new_capacity)
        return True

    def has_remote_links(self) -> bool:
        """True if any channel is fed or drained by another server.

        A network with remote links can be unblocked by external traffic,
        so an all-blocked-on-reads state is *not* diagnosable as true
        deadlock locally — the paper defers distributed deadlock detection
        to future work (section 6.2), and so does the monitor.
        """
        with self._lock:
            channels = list(self.channels)
        return any(getattr(ch, "receiver_pump", None) is not None
                   or getattr(ch, "sender_pump", None) is not None
                   for ch in channels)

    def total_buffered_bytes(self) -> int:
        return sum(ch.buffer.available() for ch in self.channels)

    def growth_events(self):
        return list(self.monitor.growth_events) if self.monitor else []
