"""Typed primitive I/O over byte channels (``java.io.Data*Stream`` analogue).

The paper keeps channels byte-oriented and layers typed access *inside*
processes: "a process may send more complex data types across a channel by
layering a ``java.io.DataOutputStream`` ... over a ``ChannelOutputStream``"
(section 3.1).  These classes do the same with fixed-width big-endian
encodings via :mod:`struct`, so a byte-level process (Cons, Duplicate) can
sit between two typed processes and the framing still lines up.

Encodings (network byte order, matching Java's):

===========  =====  =========================
method       bytes  format
===========  =====  =========================
bool         1      ``?``
byte         1      ``b``
int          4      ``>i``
long         8      ``>q``
float        4      ``>f``
double       8      ``>d``
utf          2+n    ``>H`` length + UTF-8 body
===========  =====  =========================
"""

from __future__ import annotations

import struct

from repro.kpn.streams import InputStream, OutputStream

__all__ = ["DataInputStream", "DataOutputStream"]

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")
_BOOL = struct.Struct("?")
_BYTE = struct.Struct("b")
_USHORT = struct.Struct(">H")


class DataOutputStream:
    """Writes Java-compatible primitive encodings to an output stream."""

    def __init__(self, out: OutputStream) -> None:
        self.out = out

    def write(self, data: bytes) -> None:
        self.out.write(data)

    def write_bool(self, value: bool) -> None:
        self.out.write(_BOOL.pack(bool(value)))

    def write_byte(self, value: int) -> None:
        self.out.write(_BYTE.pack(value))

    def write_int(self, value: int) -> None:
        self.out.write(_INT.pack(value))

    def write_long(self, value: int) -> None:
        self.out.write(_LONG.pack(value))

    def write_float(self, value: float) -> None:
        self.out.write(_FLOAT.pack(value))

    def write_double(self, value: float) -> None:
        self.out.write(_DOUBLE.pack(value))

    def write_utf(self, value: str) -> None:
        body = value.encode("utf-8")
        if len(body) > 0xFFFF:
            raise ValueError("write_utf limited to 65535 encoded bytes")
        self.out.write(_USHORT.pack(len(body)) + body)

    def flush(self) -> None:
        self.out.flush()

    def close(self) -> None:
        self.out.close()


class DataInputStream:
    """Reads the encodings produced by :class:`DataOutputStream`.

    All reads are exact-length (hence blocking); a stream ending mid-value
    raises :class:`~repro.errors.EndOfStreamError`, which the cascading
    termination protocol treats as the end-of-data signal.
    """

    def __init__(self, source: InputStream) -> None:
        self.source = source

    def _exact(self, n: int) -> bytes:
        read_exactly = getattr(self.source, "read_exactly", None)
        if read_exactly is not None:
            return read_exactly(n)
        # fall back to looping over short reads
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self.source.read(remaining)
            if not chunk:
                from repro.errors import EndOfStreamError
                raise EndOfStreamError("end of stream")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def read(self, max_bytes: int) -> bytes:
        return self.source.read(max_bytes)

    def read_bool(self) -> bool:
        return _BOOL.unpack(self._exact(1))[0]

    def read_byte(self) -> int:
        return _BYTE.unpack(self._exact(1))[0]

    def read_int(self) -> int:
        return _INT.unpack(self._exact(4))[0]

    def read_long(self) -> int:
        return _LONG.unpack(self._exact(8))[0]

    def read_float(self) -> float:
        return _FLOAT.unpack(self._exact(4))[0]

    def read_double(self) -> float:
        return _DOUBLE.unpack(self._exact(8))[0]

    def read_utf(self) -> str:
        (length,) = _USHORT.unpack(self._exact(2))
        return self._exact(length).decode("utf-8")

    def close(self) -> None:
        self.source.close()
