"""The common finding record shared by every ``repro lint`` pass.

All three analyses (AST lint, race detection, graph proofs) report
:class:`Finding` rows so the CLI can render one table and one JSON
document regardless of which pass produced a result.

Severities:

``error``
    a determinacy/soundness hazard; fails the lint run.
``warning``
    a risk the analysis could not discharge; fails the lint run.
``info``
    a discharged proof or neutral observation; never fails the run.
``declared``
    a hazard inside a component explicitly marked
    ``@nondeterminate("reason")`` — reported for visibility but exempt
    from the exit code (the component opted out of Kahn semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Finding", "FAILING_SEVERITIES", "JSON_SCHEMA_VERSION",
           "sort_findings", "summarize"]

#: severities that make ``repro lint`` exit non-zero
FAILING_SEVERITIES = ("error", "warning")

#: bumped whenever the ``repro lint --json`` document shape changes
JSON_SCHEMA_VERSION = 1

_SEVERITY_ORDER = {"error": 0, "warning": 1, "declared": 2, "info": 3}


@dataclass
class Finding:
    """One result row from a static-analysis pass."""

    rule: str                       #: short rule code, e.g. ``poll``
    severity: str                   #: error | warning | info | declared
    message: str                    #: human-readable description
    analysis: str                   #: astlint | races | graph
    subject: str = ""               #: class / process / channel name
    file: Optional[str] = None      #: source file, when known
    line: Optional[int] = None      #: 1-based source line, when known

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "analysis": self.analysis,
            "subject": self.subject,
            "file": self.file,
            "line": self.line,
        }

    def __str__(self) -> str:
        where = ""
        if self.file:
            where = f"{self.file}:{self.line or 0}: "
        subject = f" ({self.subject})" if self.subject else ""
        return f"{where}[{self.severity}:{self.rule}] {self.message}{subject}"


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Errors first, then warnings, declared, info; stable within a tier."""
    return sorted(findings,
                  key=lambda f: _SEVERITY_ORDER.get(f.severity, 9))


def summarize(findings: List[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0, "declared": 0}
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    counts["failing"] = sum(counts.get(s, 0) for s in FAILING_SEVERITIES)
    return counts
