"""Static deadlock and boundedness proofs over the program graph.

This upgrades the checker's blanket "graph has an undirected cycle"
flag (paper section 3.5) into directed-cycle analysis with
initial-token accounting:

* **Guaranteed deadlock.**  A directed cycle in which every process
  must read its cycle input before producing its cycle output, with no
  buffered data and no deferred (delay/initial-token) edge, can never
  make progress: nobody produces first, so nobody ever reads.  That is
  a proof, not a heuristic — the network deadlocks on every schedule.
* **Proved bounded.**  Two discharge arguments:

  - no undirected cycle at all — the paper's own section 3.5 claim
    ("sufficient for ... all programs with no undirected cycles");
  - every leaf process is rate-balanced (long-run production matches
    consumption on every output; no data-dependent routing between
    outputs) *and* every directed cycle carries at least one deferred
    edge or buffered token.  Then the feedback loops are live and the
    balanced rates keep occupancy from growing with stream length, so
    declared capacities suffice and Parks growth is never needed.

Processes advertise the contract via three class attributes declared in
:mod:`repro.kpn.process` (``kpn_strict``, ``kpn_rate_balanced``,
``kpn_deferred_inputs``); library processes set them where true
(e.g. ``Cons`` defers its ``tail``, ``Delay`` defers ``source`` when it
has initial values).  Undeclared classes are treated conservatively:
they defeat both proofs, never enable one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.kpn.process import CompositeProcess, Process

__all__ = ["ChannelEdge", "CycleReport", "GraphProof", "prove_graph",
           "graph_findings"]

#: stop enumerating simple cycles past this many (pathological graphs)
_MAX_CYCLES = 200


@dataclass
class ChannelEdge:
    """One channel viewed as a directed edge producer -> consumer."""

    channel: str
    producer: str
    consumer: str
    #: bytes currently buffered (initial tokens seeded before start)
    buffered: int
    #: the consumer defers its first read of this channel until after
    #: producing output (Cons tail, Delay with initial values), or the
    #: channel holds buffered tokens — either way the edge cannot be the
    #: blocking edge of a zero-token cycle
    deferred: bool
    #: the consumer certainly reads this channel before producing any
    #: output each step (strict, non-deferred input of a declared class)
    strict_read: bool


@dataclass
class CycleReport:
    """One directed cycle and what the analysis concluded about it."""

    processes: Tuple[str, ...]
    channels: Tuple[str, ...]
    verdict: str  #: "deadlock" | "live" | "unknown"
    reason: str


@dataclass
class GraphProof:
    """Result of :func:`prove_graph`."""

    has_directed_cycle: bool = False
    has_undirected_cycle: bool = False
    cycles: List[CycleReport] = field(default_factory=list)
    bounded: bool = False
    bounded_reason: str = ""
    #: True when cycle enumeration hit the cap (claims stay conservative)
    truncated: bool = False

    @property
    def proved_deadlocks(self) -> List[CycleReport]:
        return [c for c in self.cycles if c.verdict == "deadlock"]


def _leaves(network) -> List[Process]:
    leaves: List[Process] = []
    pending = list(network.processes)
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            pending.extend(p.processes)
        else:
            leaves.append(p)
    return leaves


def _stream_attr_names(process: Process) -> Dict[int, str]:
    """Map id(stream) -> the scalar attribute name holding it."""
    names: Dict[int, str] = {}
    for attr, value in vars(process).items():
        if attr in ("input_streams", "output_streams"):
            continue
        names.setdefault(id(value), attr)
    return names


def _edges(network) -> Tuple[List[ChannelEdge], Dict[str, Process]]:
    """Channel edges with per-edge deferral/strictness annotations."""
    leaves = _leaves(network)
    by_name = {p.name: p for p in leaves}
    producers: Dict[str, str] = {}
    consumers: Dict[str, Tuple[Process, Optional[str]]] = {}
    for p in leaves:
        attr_of = _stream_attr_names(p)
        for s in p.output_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                producers[ch.name] = p.name
        for s in p.input_streams:
            ch = getattr(s, "channel", None)
            if ch is not None:
                consumers[ch.name] = (p, attr_of.get(id(s)))
    edges: List[ChannelEdge] = []
    for ch in network.channels:
        src = producers.get(ch.name)
        entry = consumers.get(ch.name)
        if src is None or entry is None:
            continue  # dangling ends are the checker's department
        consumer, attr = entry
        deferred_attrs = tuple(getattr(consumer, "kpn_deferred_inputs", ()))
        is_deferred = attr is not None and attr in deferred_attrs
        try:
            buffered = ch.buffer.available()
        except Exception:
            buffered = 0
        strict = bool(getattr(consumer, "kpn_strict", False)) \
            and not is_deferred
        edges.append(ChannelEdge(channel=ch.name, producer=src,
                                 consumer=consumer.name, buffered=buffered,
                                 deferred=is_deferred or buffered > 0,
                                 strict_read=strict))
    return edges, by_name


def _undirected_cycle(edges: List[ChannelEdge]) -> bool:
    """Undirected cycle (incl. parallel edges), without networkx."""
    import collections
    adj: Dict[str, set] = collections.defaultdict(set)
    pair_counts: Dict[Tuple[str, str], int] = collections.Counter()
    for e in edges:
        if e.producer == e.consumer:
            return True
        key = tuple(sorted((e.producer, e.consumer)))
        pair_counts[key] += 1
        adj[e.producer].add(e.consumer)
        adj[e.consumer].add(e.producer)
    if any(n > 1 for n in pair_counts.values()):
        return True
    seen: set = set()
    for start in list(adj):
        if start in seen:
            continue
        stack = [(start, None)]
        while stack:
            node, parent = stack.pop()
            if node in seen:
                return True
            seen.add(node)
            for nb in adj[node]:
                if nb != parent:
                    stack.append((nb, node))
    return False


def _directed_cycles(edges: List[ChannelEdge]):
    """Simple directed cycles as node tuples (capped at _MAX_CYCLES)."""
    import networkx as nx

    g = nx.DiGraph()
    for e in edges:
        g.add_edge(e.producer, e.consumer)
    cycles = list(itertools.islice(nx.simple_cycles(g), _MAX_CYCLES + 1))
    truncated = len(cycles) > _MAX_CYCLES
    return cycles[:_MAX_CYCLES], truncated


def prove_graph(network) -> GraphProof:
    """Run the deadlock and boundedness analyses over ``network``."""
    edges, by_name = _edges(network)
    proof = GraphProof()
    proof.has_undirected_cycle = _undirected_cycle(edges)

    by_pair: Dict[Tuple[str, str], List[ChannelEdge]] = {}
    for e in edges:
        by_pair.setdefault((e.producer, e.consumer), []).append(e)

    cycles, proof.truncated = _directed_cycles(edges)
    proof.has_directed_cycle = bool(cycles)
    for nodes in cycles:
        hops = [(nodes[i], nodes[(i + 1) % len(nodes)])
                for i in range(len(nodes))]
        blocking: List[str] = []   # one provably-blocking channel per hop
        deferred_edge: Optional[ChannelEdge] = None
        weak_hop: Optional[Tuple[str, str]] = None
        for u, v in hops:
            candidates = by_pair.get((u, v), [])
            block = next((e for e in candidates
                          if e.strict_read and not e.deferred), None)
            if block is not None:
                blocking.append(block.channel)
            else:
                weak_hop = weak_hop or (u, v)
            if deferred_edge is None:
                deferred_edge = next((e for e in candidates if e.deferred),
                                     None)
        if len(blocking) == len(hops):
            # every hop blocks on an empty, strictly-read channel
            verdict = "deadlock"
            reason = ("every process blocks reading its cycle input "
                      "before producing; no channel on the cycle holds "
                      "tokens — no schedule can make progress")
        elif deferred_edge is not None:
            verdict = "live"
            reason = (f"{deferred_edge.consumer} defers/holds tokens on "
                      f"{deferred_edge.channel!r}, so the loop can start")
        else:
            verdict = "unknown"
            u, v = weak_hop if weak_hop else hops[0]
            reason = (f"{v} gives no strict-read guarantee for its "
                      f"input from {u}")
        proof.cycles.append(CycleReport(
            processes=tuple(nodes),
            channels=tuple(blocking) if verdict == "deadlock" else (),
            verdict=verdict, reason=reason))

    # -- boundedness ---------------------------------------------------------
    if not proof.has_undirected_cycle:
        proof.bounded = True
        proof.bounded_reason = ("no undirected cycle: default capacities "
                                "are sufficient (paper section 3.5)")
    elif proof.truncated:
        proof.bounded = False
        proof.bounded_reason = "cycle enumeration truncated; no claim"
    else:
        unbalanced = sorted({p.name for p in by_name.values()
                             if not getattr(p, "kpn_rate_balanced", False)})
        dead_or_unknown = [c for c in proof.cycles
                           if c.verdict != "live"]
        if unbalanced:
            shown = ", ".join(unbalanced[:4])
            if len(unbalanced) > 4:
                shown += ", ..."
            proof.bounded_reason = (
                "no boundedness proof: process(es) without a "
                f"rate-balance declaration: {shown}")
        elif dead_or_unknown:
            proof.bounded_reason = (
                "no boundedness proof: directed cycle without a deferred "
                "edge ("
                + " -> ".join(dead_or_unknown[0].processes) + ")")
        else:
            proof.bounded = True
            proof.bounded_reason = (
                "all processes rate-balanced and every directed cycle "
                "carries a deferred/initial token: occupancy cannot grow "
                "with stream length, declared capacities suffice")
    return proof


def graph_findings(network) -> List[Finding]:
    """Proofs as lint findings (errors for deadlocks, info for proofs)."""
    proof = prove_graph(network)
    findings: List[Finding] = []
    for cycle in proof.proved_deadlocks:
        loop = " -> ".join(cycle.processes + (cycle.processes[0],))
        findings.append(Finding(
            rule="proved-deadlock", severity="error", analysis="graph",
            subject=loop,
            message=f"directed cycle {loop} is a guaranteed deadlock: "
                    f"{cycle.reason}"))
    if proof.bounded:
        findings.append(Finding(
            rule="proved-bounded", severity="info", analysis="graph",
            subject=getattr(network, "name", ""),
            message=f"boundedness proof: {proof.bounded_reason}"))
    elif proof.has_undirected_cycle:
        findings.append(Finding(
            rule="cycle-unproved", severity="info", analysis="graph",
            subject=getattr(network, "name", ""),
            message="undirected cycle with no boundedness proof: "
                    + proof.bounded_reason))
    return findings
