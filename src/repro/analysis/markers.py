"""The ``@nondeterminate`` escape hatch.

The paper admits exactly one deliberately non-determinate component (the
Turnstile of Figures 17-18, whose merge order "depends in part on the
ordering of events in the execution environment").  Components like it
must opt out of the Kahn-semantics lint *explicitly and with a reason*,
so the linter can keep every undeclared hazard a hard failure while the
declared ones remain visible in reports:

    @nondeterminate("arrival-order merge; composite is well behaved")
    class Turnstile(IterativeProcess):
        ...

This module has no dependencies beyond the stdlib so that runtime code
(e.g. :mod:`repro.processes.routing`) can import the decorator without
pulling in the analysis passes' heavier imports.
"""

from __future__ import annotations

from typing import Any, Optional, TypeVar

__all__ = ["nondeterminate", "declared_nondeterminate", "NONDETERMINATE_ATTR"]

#: attribute the decorator stores the reason under
NONDETERMINATE_ATTR = "__kpn_nondeterminate__"

_T = TypeVar("_T")


def nondeterminate(reason: str):
    """Class/function decorator declaring intentional non-determinacy.

    ``reason`` is mandatory: an opt-out without a recorded justification
    is indistinguishable from a silenced bug.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise TypeError("@nondeterminate requires a non-empty reason string")

    def mark(obj: _T) -> _T:
        setattr(obj, NONDETERMINATE_ATTR, reason)
        return obj

    return mark


def declared_nondeterminate(obj: Any) -> Optional[str]:
    """The declared reason, or None when ``obj`` claims Kahn semantics.

    For classes, only the class's own declaration counts (not an
    inherited one): a subclass of a nondeterminate class must opt out on
    its own or face the lint.
    """
    if isinstance(obj, type):
        reason = obj.__dict__.get(NONDETERMINATE_ATTR)
    else:
        reason = getattr(obj, NONDETERMINATE_ATTR, None)
    return None if reason is None else str(reason)
