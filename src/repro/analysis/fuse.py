"""Fusion-safety analysis: which processes may the graph compiler fuse?

The graph compiler (:mod:`repro.kpn.compile`) collapses linear chains of
processes into a single thread that invokes the stage bodies by direct
call.  That is only sound for processes whose behaviour is a function of
their input streams and the ``on_start``/``step``/``on_stop`` protocol:

* anything declared ``@nondeterminate`` observes event ordering, and a
  fused schedule is a *different* ordering;
* anything that reconfigures the graph at run time (``spawn``,
  ``new_channel``, ``splice_from`` — Sift, SelfRemovingCons) creates
  processes and channels that need their own threads and real buffers;
* anything driving its own loop instead of the ``step`` protocol cannot
  be pumped one step at a time;
* anything sharing mutable state with another process depends on the
  thread interleaving the compiler is about to change.

This module centralizes those judgements so the compiler, the CLI plan
printout, and the negative tests all agree on them.  The verdicts are
conservative by construction: fusion must be *proved* safe, never
assumed (a class whose source is unavailable counts as dynamic).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, Optional

from repro.analysis.markers import NONDETERMINATE_ATTR
from repro.analysis.races import detect_races

__all__ = ["fusion_blockers", "dynamic_reason", "DYNAMIC_CALLS"]

#: method calls that reconfigure the running graph: a process making any
#: of these keeps its own thread.
DYNAMIC_CALLS = frozenset({"spawn", "new_channel", "splice_from"})

_dynamic_cache: Dict[type, Optional[str]] = {}


def dynamic_reason(klass: type) -> Optional[str]:
    """Why ``klass`` counts as dynamic (graph-reconfiguring), or None.

    Scans the AST of every class in the MRO below the framework bases
    for ``spawn`` / ``new_channel`` / ``splice_from`` call sites.
    """
    from repro.kpn.process import CompositeProcess, IterativeProcess, Process

    if klass in _dynamic_cache:
        return _dynamic_cache[klass]
    reason: Optional[str] = None
    for cls in klass.__mro__:
        if cls in (Process, IterativeProcess, CompositeProcess, object):
            continue
        if cls.__module__ == "repro.kpn.process":
            continue
        try:
            tree = ast.parse(textwrap.dedent(inspect.getsource(cls)))
        except (OSError, TypeError, SyntaxError):
            reason = (f"source of {cls.__name__} unavailable for the "
                      f"dynamic-capability scan")
            break
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in DYNAMIC_CALLS):
                reason = (f"{cls.__name__}.{node.func.attr}() reconfigures "
                          f"the graph at run time")
                break
        if reason:
            break
    _dynamic_cache[klass] = reason
    return reason


def fusion_blockers(network) -> Dict[str, str]:
    """Map every unfusable leaf process's name to the reason.

    Consults the ``@nondeterminate`` markers, the run-loop protocol, the
    dynamic-capability scan, and the shared-state race detector
    (:func:`repro.analysis.races.detect_races`) over the built network.
    Processes absent from the result are structurally safe to fuse;
    whether they actually fuse is the compiler's chain-shape decision.
    """
    from repro.kpn.process import IterativeProcess

    blockers: Dict[str, str] = {}
    for p in network._leaf_processes():
        klass = type(p)
        declared = getattr(klass, NONDETERMINATE_ATTR, None)
        if declared is not None:
            blockers[p.name] = f"@nondeterminate: {declared}"
            continue
        if (not isinstance(p, IterativeProcess)
                or klass.run is not IterativeProcess.run):
            blockers[p.name] = ("custom run() loop (not the "
                                "on_start/step/on_stop protocol)")
            continue
        dyn = dynamic_reason(klass)
        if dyn is not None:
            blockers[p.name] = f"dynamic: {dyn}"
    for race in detect_races(network):
        shared = ", ".join(race.processes)
        for name in race.processes:
            blockers.setdefault(
                name, f"shared mutable state: {race.type_name} reachable "
                      f"from {shared}")
    return blockers
