"""Kahn-semantics AST lint over process bodies.

The paper's determinacy theorem (section 2) holds only when every
process is a *sequential, functional* program whose sole interaction
with the rest of the network is blocking channel reads and writes.  The
runtime cannot enforce that ("the responsibility for consistency
checking could be given to [a] front end", section 3) — so this module
is the front end for the *inside* of a process: it walks the AST of
every ``Process`` subclass and flags the constructs that break Kahn
semantics in Python.

Rules
-----
``poll``
    Non-blocking channel inspection: ``occupancy()`` / ``available()`` /
    ``poll_ready()`` / ``at_eof()`` / ``wait_any_readable(...)`` or a
    ``read(..., timeout=...)``.  Testing an input for data is exactly
    the operation Kahn forbids — the result depends on scheduling, not
    on the streams.
``time``
    Wall-clock reads (``time.time()``, ``time.monotonic()``,
    ``datetime.now()``, ...).  ``time.sleep`` is allowed: throttling
    changes *when* tokens move, never *which* tokens.
``random``
    Unseeded randomness (``random.random()``, ``random.Random()`` with
    no seed, ``numpy.random`` without ``default_rng(seed)``).  A class
    that seeds explicitly anywhere (``random.seed(x)``,
    ``random.Random(x)``, ``default_rng(x)``) is exempt: its draws are a
    deterministic function of the seed.
``select``
    Data-dependent *input* selection: reading from a stream chosen by
    subscripting a stream collection with a value derived from channel
    data in the same function.  This is the shape of a home-grown
    nondeterministic merge.
``global-write``
    Mutation of module-level state from inside a process body (a
    ``global`` rebind, ``os.environ[...] = ...``, or a mutating method
    call / subscript store whose target is a module-level name).  Shared
    state between thread-backed processes is a race, not a stream.
``io``
    Non-channel blocking I/O side effects inside a process body:
    ``open()``, ``socket.*``, ``subprocess.*``, ``input()``,
    ``urllib``/``requests`` calls.  External I/O makes the process's
    output depend on the outside world, not its input streams.

Suppressions: append ``# repro: lint-ok[rule]`` (or a bare
``# repro: lint-ok``) to the offending line.  Whole components opt out
with ``@nondeterminate("reason")`` (see :mod:`repro.analysis.markers`):
their findings are still reported, at severity ``declared``.
"""

from __future__ import annotations

import ast
import inspect
import os
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.markers import declared_nondeterminate

__all__ = ["lint_source", "lint_file", "lint_paths", "lint_class",
           "lint_callable", "RULES"]

#: rule code -> one-line description (documented in docs/analysis.md)
RULES: Dict[str, str] = {
    "poll": "non-blocking channel inspection (data-availability test)",
    "time": "wall-clock dependence inside a process body",
    "random": "unseeded randomness inside a process body",
    "select": "data-dependent input-channel selection (ad-hoc merge)",
    "global-write": "mutation of module-level state from a process body",
    "io": "non-channel I/O side effect inside a process body",
}

#: base-class names that make a ClassDef a process for linting purposes
_PROCESS_BASES = {"Process", "IterativeProcess", "CompositeProcess"}

#: attribute calls that test a channel for data instead of blocking on it
_POLL_ATTRS = {"occupancy", "poll_ready", "wait_any_readable"}
#: poll attrs that double as ordinary names elsewhere; only flagged on
#: likely stream receivers (see _looks_like_stream)
_POLL_ATTRS_STREAMY = {"available", "at_eof"}

_TIME_FUNCS = {"time", "monotonic", "perf_counter", "time_ns",
               "monotonic_ns", "perf_counter_ns", "process_time",
               "process_time_ns", "thread_time", "clock"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

_RANDOM_FUNCS = {"random", "randint", "randrange", "uniform", "choice",
                 "choices", "shuffle", "sample", "gauss", "normalvariate",
                 "betavariate", "expovariate", "getrandbits", "randbytes",
                 "rand", "randn", "standard_normal"}

_IO_ROOTS = {"socket", "subprocess", "requests", "urllib", "http"}

_MUTATING_METHODS = {"append", "add", "extend", "update", "insert", "pop",
                     "popleft", "remove", "clear", "setdefault",
                     "appendleft", "discard", "write", "writelines",
                     "__setitem__", "sort", "reverse"}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok(?:\[([a-z-]+(?:,\s*[a-z-]+)*)\])?")


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _looks_like_stream(node: ast.AST) -> bool:
    """Heuristic: is this receiver plausibly a channel stream?

    Keeps ``available``/``at_eof`` findings to receivers that mention
    stream-ish attribute names or self state, avoiding collisions with
    unrelated APIs of the same name.
    """
    chain = _attr_chain(node)
    if not chain:
        return True  # locals assigned from reads etc. — assume stream
    streamy = {"self", "source", "sources", "inputs", "input", "stream",
               "streams", "in_", "left", "right", "data", "control",
               "tasks", "index", "pairs_in", "head", "tail"}
    return bool(set(chain) & streamy) or chain[0] == "self"


class _ModuleContext:
    """What the per-class visitor needs to know about the module."""

    def __init__(self, tree: ast.Module, source: str,
                 filename: str) -> None:
        self.filename = filename
        self.source_lines = source.splitlines()
        #: names bound at module level by assignment (shared-state roots)
        self.module_assigned: Set[str] = set()
        #: names bound at module level by class definitions
        self.module_classes: Set[str] = set()
        #: names imported from repro process modules (potential bases)
        self.imported_process_names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    if isinstance(t, ast.Name):
                        self.module_assigned.add(t.id)
            elif isinstance(node, ast.ClassDef):
                self.module_classes.add(node.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith(("repro.processes",
                                           "repro.kpn.process",
                                           "repro.parallel")):
                    for alias in node.names:
                        self.imported_process_names.add(
                            alias.asname or alias.name)

    def suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        m = _SUPPRESS_RE.search(self.source_lines[line - 1])
        if m is None:
            return False
        rules = m.group(1)
        if rules is None:
            return True
        return rule in {r.strip() for r in rules.split(",")}


def _process_classes(tree: ast.Module,
                     ctx: _ModuleContext) -> List[ast.ClassDef]:
    """ClassDefs that are (transitively) process subclasses.

    A class qualifies when a base name is a known process base, a name
    imported from a repro process module, or another qualifying class in
    the same file.
    """
    classes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
    known: Set[str] = set(_PROCESS_BASES) | ctx.imported_process_names
    qualified: Dict[str, bool] = {}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if qualified.get(cls.name):
                continue
            base_names = {b.id if isinstance(b, ast.Name) else b.attr
                          for b in cls.bases
                          if isinstance(b, (ast.Name, ast.Attribute))}
            if base_names & known or any(qualified.get(b)
                                         for b in base_names):
                qualified[cls.name] = True
                known.add(cls.name)
                changed = True
    return [c for c in classes if qualified.get(c.name)]


def _class_nondeterminate(cls: ast.ClassDef) -> Optional[str]:
    """The reason string of an AST-level ``@nondeterminate`` decorator."""
    for dec in cls.decorator_list:
        if isinstance(dec, ast.Call):
            name = (dec.func.id if isinstance(dec.func, ast.Name)
                    else dec.func.attr if isinstance(dec.func, ast.Attribute)
                    else None)
            if name == "nondeterminate":
                if dec.args and isinstance(dec.args[0], ast.Constant):
                    return str(dec.args[0].value)
                return "declared"
    return None


class _FunctionLinter(ast.NodeVisitor):
    """Lints one function body; collects raw (rule, line, message)."""

    def __init__(self, ctx: _ModuleContext) -> None:
        self.ctx = ctx
        self.raw: List[Tuple[str, int, str]] = []
        #: local names whose value derives from channel data
        self.tainted: Set[str] = set()
        #: True once the function seeds a PRNG explicitly
        self.seeds_explicitly = False

    # -- helpers -----------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.raw.append((rule, getattr(node, "lineno", 0), message))

    def _is_read_call(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("read", "read_exactly", "readinto"))

    def _expr_tainted(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if self._is_read_call(sub):
                return True
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return True
        return False

    def _tainted_subscript(self, node: ast.AST) -> bool:
        """Does the expression subscript anything with tainted data?"""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Subscript) and self._expr_tainted(sub.slice):
                return True
        return False

    # -- statement visitors ------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if self._expr_tainted(node.value) or self._tainted_subscript(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.tainted.add(t.id)
                elif isinstance(t, (ast.Tuple, ast.List)):
                    for el in t.elts:
                        if isinstance(el, ast.Name):
                            self.tainted.add(el.id)

    def visit_Global(self, node: ast.Global) -> None:
        self._flag("global-write", node,
                   "process body rebinds module-level name(s) "
                   f"{', '.join(repr(n) for n in node.names)} via `global`")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # store to a module-level container: RESULTS[k] = v
        if isinstance(node.ctx, ast.Store):
            root = _root_name(node.value)
            chain = _attr_chain(node.value)
            if chain[:2] == ["os", "environ"]:
                self._flag("global-write", node,
                           "process body mutates os.environ")
            elif (root is not None and root != "self"
                    and root in self.ctx.module_assigned):
                self._flag("global-write", node,
                           f"process body stores into module-level "
                           f"object {root!r}")
        self.generic_visit(node)

    # -- call analysis -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        # plain-name calls -------------------------------------------------
        if isinstance(func, ast.Name):
            if func.id == "wait_any_readable":
                self._flag("poll", node,
                           "wait_any_readable() tests inputs for data; "
                           "a Kahn process must commit to one blocking read")
            elif func.id == "open":
                self._flag("io", node,
                           "open() inside a process body: file contents/"
                           "effects are not part of the input streams")
            elif func.id == "input":
                self._flag("io", node, "input() inside a process body")
            elif func.id in ("Random", "default_rng"):
                if node.args or node.keywords:
                    self.seeds_explicitly = True
                else:
                    self._flag("random", node,
                               f"{func.id}() constructed without a seed")
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        chain = _attr_chain(func)
        root = chain[0] if chain else None
        # polling ----------------------------------------------------------
        if attr in _POLL_ATTRS:
            self._flag("poll", node,
                       f"{attr}() inspects channel state without blocking")
        elif attr in _POLL_ATTRS_STREAMY and not node.args \
                and _looks_like_stream(func.value):
            self._flag("poll", node,
                       f"{attr}() tests an input for data instead of "
                       "committing to a blocking read")
        elif attr == "read" and any(k.arg == "timeout" for k in node.keywords):
            self._flag("poll", node,
                       "read(timeout=...) is a poll: the outcome depends "
                       "on scheduling, not on the stream")
        # wall clock -------------------------------------------------------
        elif root == "time" and attr in _TIME_FUNCS:
            self._flag("time", node,
                       f"time.{attr}() makes output depend on the wall "
                       "clock, not the input streams")
        elif attr in _DATETIME_FUNCS and root in ("datetime", "date"):
            self._flag("time", node, f"{'.'.join(chain)}() reads the clock")
        # randomness -------------------------------------------------------
        elif attr == "seed":
            self.seeds_explicitly = True
        elif attr in ("Random", "default_rng"):
            if node.args or node.keywords:
                self.seeds_explicitly = True
            else:
                self._flag("random", node,
                           f"{attr}() constructed without a seed")
        elif attr in _RANDOM_FUNCS and root in ("random", "np", "numpy") \
                or (len(chain) >= 2 and chain[-2] == "random"
                    and attr in _RANDOM_FUNCS):
            self._flag("random", node,
                       f"{'.'.join(chain)}() draws unseeded randomness")
        # I/O side effects -------------------------------------------------
        elif root in _IO_ROOTS:
            self._flag("io", node,
                       f"{'.'.join(chain)}() performs non-channel I/O")
        # data-dependent input selection ------------------------------------
        if self._is_read_call(node):
            receiver = func.value
            if self._tainted_subscript(receiver):
                self._flag("select", node,
                           "input stream selected by channel data: a "
                           "data-dependent merge is not a Kahn process")
            for arg in node.args[:1]:
                if self._tainted_subscript(arg):
                    self._flag("select", node,
                               "input stream selected by channel data: a "
                               "data-dependent merge is not a Kahn process")
        # mutating call on module-level state --------------------------------
        if attr in _MUTATING_METHODS:
            # codec.write(stream, value): the mutated object is the stream
            target = node.args[0] if (attr in ("write", "writelines")
                                      and len(node.args) >= 2) else func.value
            troot = _root_name(target)
            if (troot is not None and troot != "self"
                    and troot not in self.tainted
                    and troot in self.ctx.module_assigned
                    and troot not in self.ctx.module_classes):
                self._flag("global-write", node,
                           f"process body mutates module-level object "
                           f"{troot!r} (shared across processes)")


def _lint_function(fn: ast.AST, ctx: _ModuleContext,
                   subject: str) -> Tuple[List[Finding], bool]:
    """Lint one function node; returns (findings, seeds_explicitly)."""
    linter = _FunctionLinter(ctx)
    for stmt in getattr(fn, "body", []):
        linter.visit(stmt)
    findings: List[Finding] = []
    for rule, line, message in linter.raw:
        if ctx.suppressed(line, rule):
            continue
        findings.append(Finding(rule=rule, severity="error",
                                message=message, analysis="astlint",
                                subject=subject, file=ctx.filename,
                                line=line))
    return findings, linter.seeds_explicitly


def _lint_class(cls: ast.ClassDef, ctx: _ModuleContext) -> List[Finding]:
    declared = _class_nondeterminate(cls)
    findings: List[Finding] = []
    seeded = False
    per_fn: List[Tuple[List[Finding], bool]] = []
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            subject = f"{cls.name}.{node.name}"
            per_fn.append(_lint_function(node, ctx, subject))
    seeded = any(s for _, s in per_fn)
    for fn_findings, _ in per_fn:
        for f in fn_findings:
            if f.rule == "random" and seeded:
                continue  # class seeds its PRNG explicitly somewhere
            if declared is not None:
                f.severity = "declared"
                f.message += f" [declared nondeterminate: {declared}]"
            findings.append(f)
    return findings


def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint every process class found in ``source``."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(rule="syntax", severity="error",
                        message=f"cannot parse: {exc.msg}",
                        analysis="astlint", file=filename,
                        line=exc.lineno or 0)]
    ctx = _ModuleContext(tree, source, filename)
    findings: List[Finding] = []
    for cls in _process_classes(tree, ctx):
        findings.extend(_lint_class(cls, ctx))
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), filename=path)


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    findings: List[Finding] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for fname in sorted(filenames):
                    if fname.endswith(".py"):
                        findings.extend(lint_file(os.path.join(dirpath, fname)))
        else:
            findings.extend(lint_file(path))
    return findings


def lint_class(klass: type) -> List[Finding]:
    """Lint a live process class via its source module.

    The runtime ``@nondeterminate`` marker is honoured even when the
    decorator was applied under an aliased import the AST pass would
    miss.
    """
    try:
        module_source = inspect.getsource(inspect.getmodule(klass))
        filename = inspect.getsourcefile(klass) or "<unknown>"
    except (TypeError, OSError):
        return []
    tree = ast.parse(module_source, filename=filename)
    ctx = _ModuleContext(tree, module_source, filename)
    declared = declared_nondeterminate(klass)
    findings: List[Finding] = []
    for cls in tree.body:
        if isinstance(cls, ast.ClassDef) and cls.name == klass.__name__:
            findings = _lint_class(cls, ctx)
            break
    if declared is not None:
        for f in findings:
            if f.severity != "declared":
                f.severity = "declared"
                f.message += f" [declared nondeterminate: {declared}]"
    return findings


def lint_callable(fn) -> List[Finding]:
    """Lint a bare function shipped into a farm/worker.

    Farm tasks execute inside worker processes, so the same hazards
    (clock, randomness, polling, shared-state mutation) break the
    determinate-farm contract.
    """
    try:
        source = inspect.getsource(fn)
        filename = inspect.getsourcefile(fn) or "<unknown>"
    except (TypeError, OSError):
        return []
    source = _dedent(source)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []
    ctx = _ModuleContext(tree, source, filename)
    declared = declared_nondeterminate(fn)
    findings: List[Finding] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_findings, seeded = _lint_function(
                node, ctx, getattr(fn, "__qualname__", node.name))
            for f in fn_findings:
                if f.rule == "random" and seeded:
                    continue
                if declared is not None:
                    f.severity = "declared"
                    f.message += f" [declared nondeterminate: {declared}]"
                findings.append(f)
    return findings


def _dedent(source: str) -> str:
    import textwrap
    return textwrap.dedent(source)
