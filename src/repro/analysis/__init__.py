"""``repro.analysis`` — zero-runtime-cost static analysis for KPN programs.

Three passes, surfaced together by ``repro lint`` (see docs/analysis.md):

* :mod:`repro.analysis.astlint` — Kahn-semantics lint over the AST of
  process bodies (polling, clock/randomness, ad-hoc merges, shared
  mutation, foreign I/O);
* :mod:`repro.analysis.races` — mutable objects reachable from two or
  more processes of a *built* network;
* :mod:`repro.analysis.graphproofs` — directed-cycle deadlock proofs
  and boundedness proofs with initial-token accounting.

:func:`lint_network` chains all three over a built
:class:`~repro.kpn.network.Network`; the source-level entry points
(:func:`lint_paths`, :func:`lint_source`) run the AST pass alone.

:mod:`repro.analysis.fuse` layers fusion-safety judgements on top of the
same passes for the graph compiler (:mod:`repro.kpn.compile`): which
processes must keep their own threads (``@nondeterminate``, dynamic
graph reconfiguration, custom run loops, shared-state races).
"""

from __future__ import annotations

from typing import List

from repro.analysis.astlint import (RULES, lint_callable, lint_class,
                                    lint_file, lint_paths, lint_source)
from repro.analysis.findings import (FAILING_SEVERITIES,
                                     JSON_SCHEMA_VERSION, Finding,
                                     sort_findings, summarize)
from repro.analysis.fuse import dynamic_reason, fusion_blockers
from repro.analysis.graphproofs import (GraphProof, graph_findings,
                                        prove_graph)
from repro.analysis.markers import declared_nondeterminate, nondeterminate
from repro.analysis.races import Race, detect_races, race_findings

__all__ = [
    "Finding", "FAILING_SEVERITIES", "JSON_SCHEMA_VERSION", "RULES",
    "sort_findings", "summarize",
    "nondeterminate", "declared_nondeterminate",
    "lint_source", "lint_file", "lint_paths", "lint_class",
    "lint_callable",
    "Race", "detect_races", "race_findings",
    "GraphProof", "prove_graph", "graph_findings",
    "fusion_blockers", "dynamic_reason",
    "lint_network",
]


def lint_network(network) -> List[Finding]:
    """All three passes over a built network.

    AST-lints each distinct leaf process class, detects shared mutable
    state, and runs the graph proofs.  Returns the combined findings,
    errors first.
    """
    from repro.kpn.process import CompositeProcess

    findings: List[Finding] = []
    seen_classes: set = set()
    pending = list(network.processes)
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            pending.extend(p.processes)
            continue
        klass = type(p)
        if klass in seen_classes:
            continue
        seen_classes.add(klass)
        findings.extend(lint_class(klass))
    findings.extend(race_findings(network))
    findings.extend(graph_findings(network))
    return sort_findings(findings)
