"""Shared-state race detection over a built :class:`Network`.

Every process runs in its own thread (paper section 3.2), so any
*mutable* Python object reachable from two processes is a data race the
runtime permits silently — and a determinacy hole the Kahn model never
sees, because it lives outside the channels.

:func:`detect_races` walks each leaf process's object graph — its
``__dict__``, the closure cells and ``functools.partial`` bindings of
any captured callables, and the contents of containers — and reports
every mutable object reachable from two or more processes.

Deliberately *not* reported:

* channels, endpoint streams, buffers, and block accounting — sharing
  them is the point; their internal locking is the runtime's contract;
* the owning :class:`Network` and other :class:`Process` objects
  (process-to-process references are topology, not shared data; the
  referenced process's own state is checked from its own root);
* locks, events, conditions, semaphores, and threads;
* immutables: tuples, frozensets, str/bytes/numbers, frozen dataclasses;
* classes that declare ``__kpn_shared_ok__ = True`` (e.g. the stateless
  element codecs, which are module-level singletons by design).
"""

from __future__ import annotations

import dataclasses
import functools
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.analysis.findings import Finding
from repro.kpn.buffers import BlockAccounting, BoundedByteBuffer
from repro.kpn.channel import Channel
from repro.kpn.network import Network
from repro.kpn.process import CompositeProcess, Process
from repro.kpn.streams import InputStream, OutputStream

__all__ = ["Race", "detect_races", "race_findings"]

#: recursion ceiling — deep graphs beyond this are runtime plumbing
_MAX_DEPTH = 12

_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes,
                 range, slice, type)

_LOCK_TYPES = (threading.Event, threading.Condition, threading.Semaphore,
               threading.BoundedSemaphore, threading.Barrier,
               threading.Thread, threading.local)

_INFRA_TYPES = (Channel, InputStream, OutputStream, BoundedByteBuffer,
                BlockAccounting, Network, Process)


@dataclass
class Race:
    """One mutable object reachable from two or more processes."""

    type_name: str
    object_repr: str
    processes: Tuple[str, ...]
    paths: Dict[str, str]  #: process name -> first capture path seen

    def describe(self) -> str:
        routes = ", ".join(f"{p} via {self.paths[p]}"
                           for p in self.processes)
        return (f"mutable {self.type_name} {self.object_repr} shared by "
                f"{len(self.processes)} processes: {routes}")


def _is_lockish(obj: Any) -> bool:
    if isinstance(obj, _LOCK_TYPES):
        return True
    # threading.Lock / RLock are C factories; match by defining module
    return type(obj).__module__ in ("_thread", "_threading_local")


def _is_exempt(obj: Any) -> bool:
    if isinstance(obj, _INFRA_TYPES) or _is_lockish(obj):
        return True
    if getattr(type(obj), "__kpn_shared_ok__", False):
        return True
    import types
    return isinstance(obj, (types.ModuleType, types.BuiltinFunctionType))


def _is_mutable(obj: Any) -> bool:
    if isinstance(obj, _ATOMIC_TYPES):
        return False
    if isinstance(obj, (tuple, frozenset)):
        return False
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return not type(obj).__dataclass_params__.frozen
    if isinstance(obj, (list, dict, set, bytearray, memoryview)):
        return True
    if type(obj).__name__ == "ndarray":  # numpy, without importing it
        return True
    import collections
    if isinstance(obj, (collections.deque, collections.Counter,
                        collections.OrderedDict, collections.defaultdict)):
        return True
    import types
    if isinstance(obj, (types.FunctionType, types.MethodType,
                        functools.partial)):
        return False  # code is shared safely; captured state is traversed
    # arbitrary instances: mutable iff they carry instance state
    return hasattr(obj, "__dict__") or bool(getattr(obj, "__slots__", ()))


def _children(obj: Any) -> List[Tuple[str, Any]]:
    """(edge-label, child) pairs to continue the capture traversal."""
    out: List[Tuple[str, Any]] = []
    import types
    if isinstance(obj, dict):
        for k, v in list(obj.items()):
            out.append((f"[{k!r}]", v))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for i, v in enumerate(list(obj)):
            out.append((f"[{i}]", v))
    elif isinstance(obj, functools.partial):
        out.append((".func", obj.func))
        for i, v in enumerate(obj.args):
            out.append((f".args[{i}]", v))
        for k, v in obj.keywords.items():
            out.append((f".keywords[{k!r}]", v))
    elif isinstance(obj, types.MethodType):
        out.append((".__func__", obj.__func__))
        # __self__ is a Process in the common case; exemption stops it
        out.append((".__self__", obj.__self__))
    elif isinstance(obj, types.FunctionType):
        for i, cell in enumerate(obj.__closure__ or ()):
            try:
                out.append((f".<closure>[{i}]", cell.cell_contents))
            except ValueError:
                pass  # empty cell
        for i, v in enumerate(obj.__defaults__ or ()):
            out.append((f".<default>[{i}]", v))
    else:
        state = getattr(obj, "__dict__", None)
        if isinstance(state, dict):
            for k, v in list(state.items()):
                out.append((f".{k}", v))
        for slot in getattr(type(obj), "__slots__", ()) or ():
            if isinstance(slot, str) and hasattr(obj, slot):
                out.append((f".{slot}", getattr(obj, slot)))
    return out


def _leaves(network: Network) -> List[Process]:
    leaves: List[Process] = []
    pending = list(network.processes)
    while pending:
        p = pending.pop()
        if isinstance(p, CompositeProcess):
            pending.extend(p.processes)
        else:
            leaves.append(p)
    return leaves


def detect_races(network: Network) -> List[Race]:
    """All mutable objects reachable from >= 2 of the network's processes."""
    #: id(obj) -> (obj, {process name -> capture path})
    seen: Dict[int, Tuple[Any, Dict[str, str]]] = {}

    def visit(obj: Any, owner: str, path: str, depth: int,
              visited: set) -> None:
        if depth > _MAX_DEPTH or obj is None:
            return
        if isinstance(obj, _ATOMIC_TYPES):
            return
        oid = id(obj)
        if oid in visited:
            return
        visited.add(oid)
        if _is_exempt(obj):
            return  # neither reported nor traversed
        entry = seen.get(oid)
        if entry is None:
            seen[oid] = (obj, {owner: path})
        else:
            entry[1].setdefault(owner, path)
        for label, child in _children(obj):
            visit(child, owner, path + label, depth + 1, visited)

    for p in _leaves(network):
        visited: set = set()
        for attr, value in list(vars(p).items()):
            if attr in ("network", "_ctrl"):
                continue
            visit(value, p.name, f"{p.name}.{attr}", 1, visited)

    races: List[Race] = []
    for obj, owners in seen.values():
        if len(owners) >= 2 and _is_mutable(obj):
            names = tuple(sorted(owners))
            try:
                shown = repr(obj)
            except Exception:
                shown = f"<{type(obj).__name__} at 0x{id(obj):x}>"
            if len(shown) > 60:
                shown = shown[:57] + "..."
            races.append(Race(type_name=type(obj).__name__,
                              object_repr=shown, processes=names,
                              paths={n: owners[n] for n in names}))
    races.sort(key=lambda r: (r.paths[r.processes[0]], r.type_name))
    return races


def race_findings(network: Network) -> List[Finding]:
    return [Finding(rule="shared-state", severity="error",
                    message=race.describe(), analysis="races",
                    subject=", ".join(race.processes))
            for race in detect_races(network)]
