"""Routing processes: Guard, Scatter/Gather, Direct, Turnstile, Select.

These implement the control-flow machinery of the paper's Figures 11,
13, and 16–18.  All are determinate Kahn processes **except**
:class:`Turnstile`, the one deliberately non-determinate component: it
merges worker results in arrival order, which "depends in part on the
ordering of events in the execution environment".  The composite indexed
merge (Turnstile + Select) is nonetheless *well behaved* — its
input-output relation is independent of the index ordering — because the
Select re-sequences results into dispatch order (see DESIGN.md,
"Interpretation note").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Sequence

from repro.analysis.markers import nondeterminate
from repro.errors import ChannelError, EndOfStreamError
from repro.kpn.channel import ChannelInputStream, wait_any_readable
from repro.kpn.process import IterativeProcess, StopProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import BOOL, Codec, INT, LONG, OBJECT, get_codec

__all__ = ["Guard", "ModuloRouter", "Scatter", "Gather", "Direct",
           "Turnstile", "Select"]


class Guard(IterativeProcess):
    """Passes data when its control input is true; discards otherwise.

    With ``stop_after_true=True`` this is the data-dependent terminator of
    the Newton square-root network (Figure 11): it forwards the converged
    root estimate once and stops, triggering the termination cascade.
    """

    kpn_strict = True
    kpn_rate_balanced = True  # single output: writes <= reads

    def __init__(self, data: InputStream, control: InputStream, out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 stop_after_true: bool = False, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.data = data
        self.control = control
        self.out = out
        self.codec = get_codec(codec)
        self.stop_after_true = stop_after_true
        self.track(data, control, out)

    def step(self) -> None:
        passed = BOOL.read(self.control)
        value = self.codec.read(self.data)
        if passed:
            self.codec.write(self.out, value)
            if self.stop_after_true:
                raise StopProcess


class ModuloRouter(IterativeProcess):
    """The ``mod`` process of Figure 13.

    "sends all values that are evenly divisible by some constant N to its
    upper output and all other values to its lower output."  For every N
    consecutive integers it emits 1 on the upper and N−1 on the lower
    output — the imbalance that deadlocks small channel capacities even in
    an acyclic graph.
    """

    kpn_strict = True
    # NOT rate-balanced: output selection is data-dependent, so relative
    # occupancies can grow without bound (the whole point of Figure 13)

    def __init__(self, source: InputStream, upper: OutputStream,
                 lower: OutputStream, divisor: int, iterations: int = 0,
                 codec: "Codec | str" = LONG, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.upper = upper
        self.lower = lower
        self.divisor = divisor
        self.codec = get_codec(codec)
        self.track(source, upper, lower)

    def step(self) -> None:
        value = self.codec.read(self.source)
        out = self.upper if value % self.divisor == 0 else self.lower
        self.codec.write(out, value)


class Scatter(IterativeProcess):
    """Round-robin distribution to N outputs (Figure 16, static balancing).

    "A Scatter process takes N tasks from the producer and distributes
    one to each of N workers" — i.e. tasks are dealt in fixed rounds, so
    every worker receives the same number of tasks (±1).
    """

    kpn_strict = True
    kpn_rate_balanced = True  # round-robin: routing is data-independent

    def __init__(self, source: InputStream, outputs: Sequence[OutputStream],
                 iterations: int = 0, codec: "Codec | str" = OBJECT,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.outputs = list(outputs)
        self.codec = get_codec(codec)
        self._next = 0
        self.track(source, *outputs)

    def step(self) -> None:
        value = self.codec.read(self.source)
        self.codec.write(self.outputs[self._next], value)
        self._next = (self._next + 1) % len(self.outputs)


class Gather(IterativeProcess):
    """Round-robin collection from N inputs (Figure 16).

    "Because the gather process collects results in the same order in
    which tasks are sent to the workers by the scatter process, the
    parallel composition is, from the point of view of the producer and
    consumer processes, equivalent to a single worker."
    """

    kpn_strict = True
    kpn_rate_balanced = True  # round-robin: routing is data-independent

    def __init__(self, inputs: Sequence[InputStream], out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = OBJECT,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.inputs = list(inputs)
        self.out = out
        self.codec = get_codec(codec)
        self._next = 0
        self.track(*inputs, self.out)

    def step(self) -> None:
        value = self.codec.read(self.inputs[self._next])
        self.codec.write(self.out, value)
        self._next = (self._next + 1) % len(self.inputs)


class Direct(IterativeProcess):
    """Index-driven task distribution (Figure 17, dynamic balancing).

    Each step reads a worker index from the index stream (which begins
    with the initial sequence 0..N−1 and then carries the Turnstile's
    completion order) and forwards the next task to that worker — "a new
    task is distributed to a Worker for every result collected from that
    Worker".
    """

    kpn_strict = True
    # NOT rate-balanced: output selection is driven by the index stream

    def __init__(self, tasks: InputStream, index: InputStream,
                 outputs: Sequence[OutputStream], iterations: int = 0,
                 codec: "Codec | str" = OBJECT, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.tasks = tasks
        self.index = index
        self.outputs = list(outputs)
        self.codec = get_codec(codec)
        self.track(tasks, index, *outputs)

    def step(self) -> None:
        worker = INT.read(self.index)
        task = self.codec.read(self.tasks)
        self.codec.write(self.outputs[worker], task)


@nondeterminate("arrival-order merge: output ordering depends on event "
                "timing in the execution environment (paper section 5); "
                "well behaved only in composition with Select")
class Turnstile(IterativeProcess):
    """Arrival-order merge of worker results — the non-determinate piece.

    Two outputs: a stream of ``(index, result)`` pairs to the Select, and
    a bare index stream to the Direct (via the initial-sequence Cons).
    The pair stream fuses the paper's "results ... passed through to the
    Select" with "an index stream indicating that order", guaranteeing
    the Select sees index and result atomically even across migration.

    Termination: inputs that reach end-of-stream are retired; when all
    are retired the Turnstile stops.  A failed write on the *index*
    output (the Direct has already stopped because the producer ran dry)
    is tolerated so that every remaining result still reaches the Select —
    without this, results completed after the last dispatch could be lost
    in the shutdown cascade.
    """

    def __init__(self, inputs: Sequence[ChannelInputStream], pairs_out: OutputStream,
                 index_out: OutputStream, iterations: int = 0,
                 codec: "Codec | str" = OBJECT, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.inputs = list(inputs)
        self.pairs_out = pairs_out
        self.index_out = index_out
        self.codec = get_codec(codec)
        self._active = list(range(len(self.inputs)))
        self._index_broken = False
        self.track(*inputs, pairs_out, index_out)

    def step(self) -> None:
        while True:
            if not self._active:
                raise EndOfStreamError("all worker inputs exhausted")
            active_streams = [self.inputs[i] for i in self._active]
            ready = wait_any_readable(active_streams, timeout=5.0)
            # resolve positions to worker ids BEFORE mutating _active
            ready_ids = [self._active[pos] for pos in ready]
            progressed = False
            for i in ready_ids:
                stream = self.inputs[i]
                if stream.at_eof():
                    self._active.remove(i)
                    progressed = True
                    continue
                result = self.codec.read(stream)
                OBJECT.write(self.pairs_out, (i, result))
                if not self._index_broken:
                    try:
                        INT.write(self.index_out, i)
                    except ChannelError:
                        self._index_broken = True
                return
            if progressed:
                continue


class Select(IterativeProcess):
    """Re-sequencer: emits results in dispatch (= task production) order.

    Reads ``(index, result)`` pairs from the Turnstile.  The dispatch
    order is reconstructed from the same pair stream: dispatch k ≥ N goes
    to the worker named by completion k−N (Direct consumes the identical
    index sequence), and dispatches 0..N−1 are the initial sequence.
    Per-worker FIFO queues hold early arrivals until their turn.  The
    result: the consumer sees exactly the sequence it would see from a
    single worker — the "well behaved" property of section 5.
    """

    kpn_strict = True
    kpn_rate_balanced = True  # emits exactly one result per pair consumed

    def __init__(self, pairs_in: InputStream, out: OutputStream, n_workers: int,
                 iterations: int = 0, codec: "Codec | str" = OBJECT,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.pairs_in = pairs_in
        self.out = out
        self.n_workers = n_workers
        self.codec = get_codec(codec)
        self._dispatch_order: deque[int] = deque(range(n_workers))
        self._queues: list[deque[Any]] = [deque() for _ in range(n_workers)]
        self.track(pairs_in, out)

    def _emit_ready(self) -> bool:
        emitted = False
        while self._dispatch_order and self._queues[self._dispatch_order[0]]:
            worker = self._dispatch_order.popleft()
            self.codec.write(self.out, self._queues[worker].popleft())
            emitted = True
        return emitted

    def step(self) -> None:
        try:
            index, result = OBJECT.read(self.pairs_in)
        except EndOfStreamError:
            # Flush everything still in order, then finish.
            self._emit_ready()
            raise
        self._queues[index].append(result)
        self._dispatch_order.append(index)
        self._emit_ready()

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_dispatch_order"] = deque(self._dispatch_order)
        state["_queues"] = [deque(q) for q in self._queues]
        return state
