"""Element codecs: how typed tokens map onto channel byte streams.

The paper's processes layer ``DataOutputStream`` / ``ObjectOutputStream``
over the raw channel streams inside each process (section 3.1).  A *codec*
bundles the two directions of that layering so that typed library
processes (Add, Scale, Merge, …) can be written once and parameterized by
element type, while the channels — and any byte-level process spliced in
between, such as Cons or Duplicate — remain type-agnostic.

Fixed-width codecs (LONG, DOUBLE, INT, BOOL) use Java-compatible
big-endian encodings; OBJECT uses length-prefixed pickle frames.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.kpn.data import DataInputStream, DataOutputStream
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream
from repro.kpn.streams import InputStream, OutputStream

__all__ = [
    "Codec", "StructCodec", "ObjectCodec",
    "LONG", "INT", "DOUBLE", "BOOL", "OBJECT",
    "get_codec",
]


class Codec:
    """Encode/decode one element to/from a byte stream."""

    #: bytes per element, or None for variable-width codecs
    width: int | None = None

    def write(self, out: OutputStream, value: Any) -> None:
        raise NotImplementedError

    def read(self, source: InputStream) -> Any:
        raise NotImplementedError

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError


class StructCodec(Codec):
    """Fixed-width codec described by a :mod:`struct` format string."""

    def __init__(self, fmt: str, name: str) -> None:
        self._struct = struct.Struct(fmt)
        self.width = self._struct.size
        self.name = name

    def write(self, out: OutputStream, value: Any) -> None:
        out.write(self._struct.pack(value))

    def read(self, source: InputStream) -> Any:
        data = _read_exactly(source, self.width)
        return self._struct.unpack(data)[0]

    def encode(self, value: Any) -> bytes:
        return self._struct.pack(value)

    def __reduce__(self):
        # struct.Struct objects are unpicklable; named codecs rebuild via
        # the registry, ad-hoc ones via their format string.  This is what
        # lets processes holding codecs migrate between servers.
        if _BY_NAME.get(self.name) is self:
            return (get_codec, (self.name,))
        return (StructCodec, (self._struct.format, self.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StructCodec {self.name}>"


class ObjectCodec(Codec):
    """Variable-width pickle-framed codec (``ObjectOutputStream`` analogue)."""

    width = None
    name = "object"
    _LEN = struct.Struct(">I")

    def __reduce__(self):
        return (get_codec, ("object",))

    def write(self, out: OutputStream, value: Any) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.write(self._LEN.pack(len(payload)) + payload)

    def read(self, source: InputStream) -> Any:
        (length,) = self._LEN.unpack(_read_exactly(source, 4))
        return pickle.loads(_read_exactly(source, length))

    def encode(self, value: Any) -> bytes:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return self._LEN.pack(len(payload)) + payload


def _read_exactly(source: InputStream, n: int) -> bytes:
    read_exactly = getattr(source, "read_exactly", None)
    if read_exactly is not None:
        return read_exactly(n)
    parts: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = source.read(remaining)
        if not chunk:
            from repro.errors import EndOfStreamError
            raise EndOfStreamError("end of stream")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


LONG = StructCodec(">q", "long")
INT = StructCodec(">i", "int")
DOUBLE = StructCodec(">d", "double")
BOOL = StructCodec("?", "bool")
OBJECT = ObjectCodec()

_BY_NAME = {"long": LONG, "int": INT, "double": DOUBLE, "bool": BOOL,
            "object": OBJECT}


def get_codec(spec: "Codec | str") -> Codec:
    """Resolve a codec instance or name ('long', 'double', 'object', …)."""
    if isinstance(spec, Codec):
        return spec
    try:
        return _BY_NAME[spec]
    except KeyError:
        raise ValueError(f"unknown codec {spec!r}; known: {sorted(_BY_NAME)}")
