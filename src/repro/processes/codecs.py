"""Element codecs: how typed tokens map onto channel byte streams.

The paper's processes layer ``DataOutputStream`` / ``ObjectOutputStream``
over the raw channel streams inside each process (section 3.1).  A *codec*
bundles the two directions of that layering so that typed library
processes (Add, Scale, Merge, …) can be written once and parameterized by
element type, while the channels — and any byte-level process spliced in
between, such as Cons or Duplicate — remain type-agnostic.

Fixed-width codecs (LONG, DOUBLE, INT, BOOL) use Java-compatible
big-endian encodings; OBJECT uses length-prefixed pickle frames.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.kpn.data import DataInputStream, DataOutputStream
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream
from repro.kpn.streams import InputStream, OutputStream

__all__ = [
    "Codec", "StructCodec", "ObjectCodec",
    "LONG", "INT", "DOUBLE", "BOOL", "OBJECT",
    "get_codec",
]


class Codec:
    """Encode/decode one element to/from a byte stream."""

    #: bytes per element, or None for variable-width codecs
    width: int | None = None

    #: codecs are stateless after construction; the module-level singletons
    #: (LONG, OBJECT, ...) are legitimately shared between processes, so the
    #: race detector (repro.analysis.races) must not report them
    __kpn_shared_ok__ = True

    def write(self, out: OutputStream, value: Any) -> None:
        raise NotImplementedError

    def read(self, source: InputStream) -> Any:
        raise NotImplementedError

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError


class StructCodec(Codec):
    """Fixed-width codec described by a :mod:`struct` format string."""

    def __init__(self, fmt: str, name: str) -> None:
        self._struct = struct.Struct(fmt)
        self.width = self._struct.size
        self.name = name

    def write(self, out: OutputStream, value: Any) -> None:
        out.write(self._struct.pack(value))

    def read(self, source: InputStream) -> Any:
        data = _read_exactly(source, self.width)
        return self._struct.unpack(data)[0]

    def encode(self, value: Any) -> bytes:
        return self._struct.pack(value)

    def __reduce__(self):
        # struct.Struct objects are unpicklable; named codecs rebuild via
        # the registry, ad-hoc ones via their format string.  This is what
        # lets processes holding codecs migrate between servers.
        if _BY_NAME.get(self.name) is self:
            return (get_codec, (self.name,))
        return (StructCodec, (self._struct.format, self.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StructCodec {self.name}>"


class ObjectCodec(Codec):
    """Variable-width pickle-framed codec (``ObjectOutputStream`` analogue).

    This is the per-task hot path of every farm (one read + one write per
    Worker step), so both directions keep per-stream serialization state
    instead of re-deriving it per element:

    * reads cache the stream's bound ``read_exactly`` on the stream itself
      — no ``getattr`` probe and no fallback-loop dispatch per element;
    * writes go through the stream's ``write_vectored`` when present, so
      the 4-byte header and the payload reach the channel in one call with
      no ``header + payload`` concatenation copy.

    Reusing actual ``Pickler``/``Unpickler`` *objects* per stream was
    measured and rejected: with CPython's C implementation,
    ``pickle.dumps`` beats a reused ``Pickler`` + ``BytesIO`` at every
    payload size (the framework setup it would amortize is cheaper than
    the Python-level buffer juggling), and clearing an ``Unpickler``'s
    memo between messages is not supported by the C accelerator.  The
    per-message allocation that matters — the joined frame — is what the
    vectored write removes.
    """

    width = None
    name = "object"
    _LEN = struct.Struct(">I")

    def __reduce__(self):
        return (get_codec, ("object",))

    def write(self, out: OutputStream, value: Any) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            vectored = out._codec_write_vectored
        except AttributeError:
            vectored = getattr(out, "write_vectored", None)
            try:
                out._codec_write_vectored = vectored
            except AttributeError:      # slotted/foreign sink: no cache
                pass
        if vectored is not None:
            vectored((self._LEN.pack(len(payload)), payload))
        else:
            out.write(self._LEN.pack(len(payload)) + payload)

    def read(self, source: InputStream) -> Any:
        try:
            exact = source._codec_read_exactly
        except AttributeError:
            exact = _exact_reader(source)
            try:
                source._codec_read_exactly = exact
            except AttributeError:      # slotted/foreign source: no cache
                pass
        (length,) = self._LEN.unpack(exact(4))
        return pickle.loads(exact(length))

    def encode(self, value: Any) -> bytes:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return self._LEN.pack(len(payload)) + payload


def _exact_reader(source: InputStream):
    """A bound exact-length reader for ``source`` (cacheable per stream)."""
    read_exactly = getattr(source, "read_exactly", None)
    if read_exactly is not None:
        return read_exactly

    def _fallback(n: int) -> bytes:
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = source.read(remaining)
            if not chunk:
                from repro.errors import EndOfStreamError
                raise EndOfStreamError("end of stream")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    return _fallback


def _read_exactly(source: InputStream, n: int) -> bytes:
    return _exact_reader(source)(n)


LONG = StructCodec(">q", "long")
INT = StructCodec(">i", "int")
DOUBLE = StructCodec(">d", "double")
BOOL = StructCodec("?", "bool")
OBJECT = ObjectCodec()

_BY_NAME = {"long": LONG, "int": INT, "double": DOUBLE, "bool": BOOL,
            "object": OBJECT}


def get_codec(spec: "Codec | str") -> Codec:
    """Resolve a codec instance or name ('long', 'double', 'object', …)."""
    if isinstance(spec, Codec):
        return spec
    try:
        return _BY_NAME[spec]
    except KeyError:
        raise ValueError(f"unknown codec {spec!r}; known: {sorted(_BY_NAME)}")
