"""Deterministic merge processes.

:class:`OrderedMerge` is the ``Merge`` of the Hamming network (Figure 12):
an order-preserving merge of two ascending streams that eliminates
duplicates.  Unlike the Turnstile (routing.py) it is fully determinate —
it decides which input to read *from the data itself*, never from timing.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EndOfStreamError
from repro.kpn.process import IterativeProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import Codec, LONG, get_codec

__all__ = ["OrderedMerge", "ordered_merge_tree"]

_MISSING = object()


class OrderedMerge(IterativeProcess):
    """Merge two ascending streams, dropping duplicates.

    When one input ends, the remainder of the other is passed through, so
    the merge of a finite and an infinite stream is well-defined.
    """

    def __init__(self, left: InputStream, right: InputStream, out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 dedup: bool = True, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.left = left
        self.right = right
        self.out = out
        self.codec = get_codec(codec)
        self.dedup = dedup
        self._a = _MISSING  # pending element from left
        self._b = _MISSING  # pending element from right
        self._left_done = False
        self._right_done = False
        self.track(left, right, out)

    def _fill(self) -> None:
        if self._a is _MISSING and not self._left_done:
            try:
                self._a = self.codec.read(self.left)
            except EndOfStreamError:
                self._left_done = True
        if self._b is _MISSING and not self._right_done:
            try:
                self._b = self.codec.read(self.right)
            except EndOfStreamError:
                self._right_done = True

    def step(self) -> None:
        self._fill()
        a, b = self._a, self._b
        if a is _MISSING and b is _MISSING:
            raise EndOfStreamError("both inputs exhausted")
        if b is _MISSING:
            self.codec.write(self.out, a)
            self._a = _MISSING
            return
        if a is _MISSING:
            self.codec.write(self.out, b)
            self._b = _MISSING
            return
        if a < b:
            self.codec.write(self.out, a)
            self._a = _MISSING
        elif b < a:
            self.codec.write(self.out, b)
            self._b = _MISSING
        else:  # equal
            self.codec.write(self.out, a)
            self._a = _MISSING
            if self.dedup:
                self._b = _MISSING
            else:
                pass  # emit the duplicate on a later step

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        # _MISSING is a module-level sentinel; re-bind on unpickle via
        # name rather than shipping the object identity.
        state["_a_missing"] = state.pop("_a") is _MISSING
        state["_b_missing"] = state.pop("_b") is _MISSING
        if not state["_a_missing"]:
            state["_a_value"] = self._a
        if not state["_b_missing"]:
            state["_b_value"] = self._b
        return state

    def __setstate__(self, state: dict) -> None:
        a_missing = state.pop("_a_missing")
        b_missing = state.pop("_b_missing")
        a_value = state.pop("_a_value", None)
        b_value = state.pop("_b_value", None)
        self.__dict__.update(state)
        self._a = _MISSING if a_missing else a_value
        self._b = _MISSING if b_missing else b_value


def ordered_merge_tree(network, inputs, out, codec: "Codec | str" = LONG,
                       capacity: Optional[int] = None, dedup: bool = True,
                       prefix: str = "merge"):
    """Build a balanced tree of OrderedMerge processes over N inputs.

    Returns the list of processes created (already added to ``network``).
    The Hamming network needs a 3-way merge; the paper composes it from
    binary merges, as does this helper.
    """
    processes = []
    level = list(inputs)
    tier = 0
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            if len(level) - i == 2 and not next_level and len(level) == 2:
                merged_out = out
            else:
                ch = network.channel(capacity, name=f"{prefix}-t{tier}-{i // 2}")
                merged_out = ch.get_output_stream()
            m = OrderedMerge(level[i], level[i + 1], merged_out, codec=codec,
                             dedup=dedup, name=f"{prefix}-{tier}-{i // 2}")
            network.add(m)
            processes.append(m)
            if merged_out is not out:
                next_level.append(merged_out.channel.get_input_stream())
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
        tier += 1
    return processes
