"""Byte-level and element-level transform processes.

The byte-level processes are the paper's showcase for type independence
(section 3.1): "Some processes, such as Cons and Duplicate simply process
bytes and need not be aware of any structure within a byte stream."

* :class:`Cons` — stream concatenation: forwards everything from its
  *head* input, then everything from its *tail* input.  With a one-shot
  ``Constant`` on the head this is exactly the paper's "inserts an element
  at the head of a stream" (Figure 2).
* :class:`SelfRemovingCons` — the reconfiguring variant of Figures 9–10:
  once the head is exhausted it splices its tail channel directly into its
  downstream channel and removes itself from the graph, so no copying
  thread remains.
* :class:`Duplicate` — fan-out of one byte stream to N outputs (Figure 5).
* :class:`Scale`, :class:`MapProcess` — element-level transforms used by
  the Hamming network (Figure 12) and general plumbing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import ChannelError, EndOfStreamError
from repro.kpn.channel import ChannelInputStream, ChannelOutputStream
from repro.kpn.process import IterativeProcess, StopProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import Codec, LONG, get_codec

__all__ = ["Cons", "SelfRemovingCons", "Duplicate", "Scale", "MapProcess", "Identity"]

#: chunk size for byte-level copying; FIFO order is preserved regardless
COPY_CHUNK = 4096


class Cons(IterativeProcess):
    """Byte-level stream concatenation: head, then tail.

    The paper's Fibonacci graph uses ``Cons`` to prepend the seed value
    produced by a one-iteration ``Constant`` to the stream circulating in
    the feedback loop (Figure 6).
    """

    kpn_strict = True
    kpn_rate_balanced = True
    #: the head is copied out before the tail is ever read — on a
    #: feedback cycle this is the initial token (paper Figure 6)
    kpn_deferred_inputs = ("tail",)

    def __init__(self, head: InputStream, tail: InputStream, out: OutputStream,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=0, name=name)
        self.head = head
        self.tail = tail
        self.out = out
        self._phase = 0  # 0 = copying head, 1 = copying tail
        self.track(head, tail, out)

    def step(self) -> None:
        source = self.head if self._phase == 0 else self.tail
        chunk = source.read(COPY_CHUNK)
        if chunk:
            self.out.write(chunk)
        elif self._phase == 0:
            self._phase = 1
        else:
            raise EndOfStreamError("both inputs exhausted")


class SelfRemovingCons(Cons):
    """Cons that removes itself from the graph after the head is exhausted.

    "To avoid unnecessary copying of data and improve efficiency, the Cons
    processes remove themselves from the program graph" (Figure 9).  The
    removal is the 3-stage splice of Figure 10: the tail channel's input
    stream is appended to the downstream channel's SequenceInputStream,
    then this process stops and closes its *output*, so the consumer
    drains the bytes Cons already copied and continues reading directly
    from the upstream channel "without interruption".

    Requires channel-endpoint streams (it must reach the actual channels
    to rewire them); plain Cons works with any streams.
    """

    def __init__(self, head: InputStream, tail: ChannelInputStream,
                 out: ChannelOutputStream, name: Optional[str] = None) -> None:
        super().__init__(head, tail, out, name=name)
        self.removed = False

    def step(self) -> None:
        chunk = self.head.read(COPY_CHUNK)
        if chunk:
            self.out.write(chunk)
            return
        # Head exhausted: splice tail channel into the downstream channel.
        downstream_input = self.out.channel.get_input_stream()
        downstream_input.splice_from(self.tail)  # detaches self.tail
        self.removed = True
        # Stopping closes our output; the consumer drains it, reaches its
        # end, and the spliced stream becomes active.
        raise StopProcess


class Duplicate(IterativeProcess):
    """Copies its input byte stream to every output (paper Figure 5).

    Two termination disciplines for the fan-out edge case (one branch's
    consumer closes while others still read):

    * ``resilient=False`` (default, the paper's Figure-5 semantics): the
      first broken output stops the whole Duplicate.  This is what makes
      sink-limited termination cascade *upstream through fan-outs* — the
      paper's "first 100 primes" mode needs it — at the price that
      sibling branches are cut at a buffering-dependent point.
    * ``resilient=True`` (Kahn-faithful): a broken output is dropped and
      the remaining branches keep receiving data until input EOF (or all
      outputs break).  Sibling histories then match the denotational
      semantics exactly under any capacity — the property-based
      determinacy tests run in this mode — but an upstream cut no longer
      propagates through the fan-out, so sink-limited graphs must bound
      their sources instead.
    """

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, outputs: Sequence[OutputStream],
                 resilient: bool = False, name: Optional[str] = None) -> None:
        super().__init__(iterations=0, name=name)
        self.source = source
        self.outputs = list(outputs)
        self.resilient = resilient
        self._broken: set[int] = set()
        self.track(source, *outputs)

    def step(self) -> None:
        chunk = self.source.read(COPY_CHUNK)
        if not chunk:
            raise EndOfStreamError("input exhausted")
        if not self.resilient:
            for out in self.outputs:
                out.write(chunk)
            return
        for i, out in enumerate(self.outputs):
            if i in self._broken:
                continue
            try:
                out.write(chunk)
            except ChannelError:
                self._broken.add(i)
        if len(self._broken) == len(self.outputs):
            raise EndOfStreamError("all outputs closed")

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_broken"] = set(self._broken)
        return state


class Identity(IterativeProcess):
    """Copies input bytes to output unchanged (useful as a buffer stage)."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, out: OutputStream,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=0, name=name)
        self.source = source
        self.out = out
        self.track(source, out)

    def step(self) -> None:
        chunk = self.source.read(COPY_CHUNK)
        if not chunk:
            raise EndOfStreamError("input exhausted")
        self.out.write(chunk)


class Scale(IterativeProcess):
    """Multiplies each element by a constant (Hamming network, Figure 12)."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, out: OutputStream, factor: Any,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.factor = factor
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self) -> None:
        self.codec.write(self.out, self.codec.read(self.source) * self.factor)


class MapProcess(IterativeProcess):
    """Applies a pure function to each element.

    The host-language escape hatch of section 1: any Python callable can
    become a process, and as long as it is pure (no shared state with
    other processes) the network remains determinate.
    """

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, out: OutputStream,
                 fn: Callable[[Any], Any], iterations: int = 0,
                 codec: "Codec | str" = LONG,
                 out_codec: "Codec | str | None" = None,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.fn = fn
        self.codec = get_codec(codec)
        self.out_codec = get_codec(out_codec) if out_codec is not None else self.codec
        self.track(source, out)

    def step(self) -> None:
        self.out_codec.write(self.out, self.fn(self.codec.read(self.source)))
