"""Element-wise arithmetic processes (Figures 2, 11, 12).

All of these read one element from each input per step and write one
element, so they are continuous Kahn functions by construction.  The
element type is a codec parameter; the Fibonacci and sieve networks use
LONG, the Newton square-root network uses DOUBLE.
"""

from __future__ import annotations

from typing import Optional

from repro.kpn.process import IterativeProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import BOOL, Codec, LONG, get_codec

__all__ = ["Add", "Subtract", "Multiply", "Divide", "Average", "Equal",
           "ModuloFilter", "BinaryOp"]


class BinaryOp(IterativeProcess):
    """Base: combine one element from each of two inputs per step."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, left: InputStream, right: InputStream, out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 out_codec: "Codec | str | None" = None,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.left = left
        self.right = right
        self.out = out
        self.codec = get_codec(codec)
        self.out_codec = get_codec(out_codec) if out_codec is not None else self.codec
        self.track(left, right, out)

    def combine(self, a, b):
        raise NotImplementedError

    def step(self) -> None:
        a = self.codec.read(self.left)
        b = self.codec.read(self.right)
        self.out_codec.write(self.out, self.combine(a, b))


class Add(BinaryOp):
    """Adds two streams element-wise (the Fibonacci feedback adder)."""

    def combine(self, a, b):
        return a + b


class Subtract(BinaryOp):
    def combine(self, a, b):
        return a - b


class Multiply(BinaryOp):
    def combine(self, a, b):
        return a * b


class Divide(BinaryOp):
    """Element-wise division (the x / r_{n-1} stage of Figure 11)."""

    def combine(self, a, b):
        return a / b


class Average(BinaryOp):
    """Element-wise mean (the (x/r + r)/2 stage of Figure 11)."""

    def combine(self, a, b):
        return (a + b) / 2


class Equal(BinaryOp):
    """Emits booleans: are the two inputs element-wise equal?

    In the Newton network this detects that "the limits of precision of
    the floating-point representation have been reached and the root
    estimate stops changing".
    """

    def __init__(self, left: InputStream, right: InputStream, out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 name: Optional[str] = None) -> None:
        super().__init__(left, right, out, iterations=iterations, codec=codec,
                         out_codec=BOOL, name=name)

    def combine(self, a, b):
        return a == b


class ModuloFilter(IterativeProcess):
    """Drops multiples of ``divisor``; passes everything else through.

    The ``Modulo`` process of the Sieve of Eratosthenes (Figures 7–8):
    each newly discovered prime inserts one of these to "filter out
    multiples of a newly encountered prime".  Note a step may consume
    several inputs before producing an output; that is still a continuous
    (indeed monotonic) stream function.
    """

    kpn_strict = True         # reads before it ever writes
    kpn_rate_balanced = True  # single-output filter: writes <= reads

    def __init__(self, source: InputStream, out: OutputStream, divisor: int,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.divisor = divisor
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self) -> None:
        while True:
            value = self.codec.read(self.source)
            if value % self.divisor != 0:
                self.codec.write(self.out, value)
                return
