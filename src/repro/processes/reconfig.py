"""Self-reconfiguring processes: the Sieve of Eratosthenes (Figures 7–8).

Reconfiguration is "initiated by processes and not some external agent"
(section 3.3), which is what preserves determinism: the Sift process
controls both the rearrangement of channel connections and the activation
of the Modulo process it inserts, so "the Modulo process reads from the
channel precisely where the Sift process left off; data elements are
neither lost nor repeated".

Two definitions, both from the paper:

* :class:`Sift` — iterative (Figure 8): stays in the graph, repeatedly
  inserting Modulo processes ahead of itself.
* :class:`RecursiveSift` — recursive (Figure 7): replaces itself with a
  Modulo process and a fresh Sift.
"""

from __future__ import annotations

from typing import Optional

from repro.kpn.process import IterativeProcess, StopProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.arithmetic import ModuloFilter
from repro.processes.codecs import Codec, LONG, get_codec

__all__ = ["Sift", "RecursiveSift"]


class Sift(IterativeProcess):
    """Iterative sieve head (paper Figure 8).

    Each step: read a prime, emit it, then insert a ``ModuloFilter`` for
    that prime *ahead of itself* by (1) handing the filter this process's
    current input stream, (2) creating a fresh channel from the filter to
    this process, and (3) activating the filter.  Unconsumed data in the
    old channel is preserved automatically — the filter simply continues
    reading the same stream object at the same position.
    """

    def __init__(self, source: InputStream, out: OutputStream,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 channel_capacity: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.codec = get_codec(codec)
        self.channel_capacity = channel_capacity
        #: filters inserted so far (diagnostics/tests)
        self.inserted: list[int] = []
        self.track(source, out)

    def step(self) -> None:
        prime = self.codec.read(self.source)
        self.codec.write(self.out, prime)
        channel = self.new_channel(self.channel_capacity,
                                   name=f"{self.name}-mod{prime}")
        modulo = ModuloFilter(self.source, channel.get_output_stream(), prime,
                              codec=self.codec, name=f"Modulo-{prime}")
        # Ownership of the old input moves to the filter; our new input is
        # the filter's output channel.
        self.untrack(self.source)
        self.source = channel.get_input_stream()
        self.track(self.source)
        self.inserted.append(prime)
        self.spawn(modulo)


class RecursiveSift(IterativeProcess):
    """Recursive sieve head (paper Figure 7).

    One step: read a prime, emit it, then *replace itself* with a
    ``ModuloFilter`` (fed by this process's input) and a new
    ``RecursiveSift`` (writing to this process's output), and stop.  All
    stream ownership transfers to the replacements, so this process's
    ``on_stop`` must not close anything — hence the ``untrack`` calls.
    """

    def __init__(self, source: InputStream, out: OutputStream,
                 codec: "Codec | str" = LONG,
                 channel_capacity: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=0, name=name)
        self.source = source
        self.out = out
        self.codec = get_codec(codec)
        self.channel_capacity = channel_capacity
        self.track(source, out)

    def step(self) -> None:
        prime = self.codec.read(self.source)
        self.codec.write(self.out, prime)
        channel = self.new_channel(self.channel_capacity,
                                   name=f"{self.name}-mod{prime}")
        modulo = ModuloFilter(self.source, channel.get_output_stream(), prime,
                              codec=self.codec, name=f"Modulo-{prime}")
        replacement = RecursiveSift(channel.get_input_stream(), self.out,
                                    codec=self.codec,
                                    channel_capacity=self.channel_capacity,
                                    name=f"Sift-after-{prime}")
        self.untrack(self.source, self.out)
        self.spawn(modulo)
        self.spawn(replacement)
        raise StopProcess
