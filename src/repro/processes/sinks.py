"""Sink processes: they only consume.

:class:`Print` is the paper's terminal process (Figures 2, 7, 11); its
iteration limit is the canonical downstream-termination trigger of section
3.4 ("impose an iteration limit on the Print process so that it stops
after printing 100 numbers").  :class:`Collect` is the testing-friendly
variant that appends into a caller-supplied list instead of printing.
"""

from __future__ import annotations

import sys
from typing import Any, List, Optional, TextIO

from repro.kpn.process import IterativeProcess
from repro.kpn.streams import InputStream
from repro.processes.codecs import Codec, LONG, get_codec

__all__ = ["Print", "Collect", "Discard"]


class Print(IterativeProcess):
    """Prints each element of its input stream."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, iterations: int = 0,
                 codec: "Codec | str" = LONG, file: Optional[TextIO] = None,
                 prefix: str = "", name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.codec = get_codec(codec)
        self.file = file
        self.prefix = prefix
        self.track(source)

    def step(self) -> None:
        value = self.codec.read(self.source)
        print(f"{self.prefix}{value}", file=self.file or sys.stdout)

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        if state.get("file") is not None:  # file handles do not migrate
            state["file"] = None
        return state


class Collect(IterativeProcess):
    """Appends each element to ``into`` (a list shared with the caller).

    The workhorse of the test suite: run a network, then assert on the
    collected history — which, by determinacy, is unique.
    """

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, into: List[Any], iterations: int = 0,
                 codec: "Codec | str" = LONG, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.into = into
        self.codec = get_codec(codec)
        self.track(source)

    def step(self) -> None:
        self.into.append(self.codec.read(self.source))


class Discard(IterativeProcess):
    """Consumes and drops elements (keeps upstream from blocking forever)."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, iterations: int = 0,
                 codec: "Codec | str" = LONG, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.codec = get_codec(codec)
        self.track(source)

    def step(self) -> None:
        self.codec.read(self.source)
