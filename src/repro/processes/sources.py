"""Source processes: they only produce (paper Figures 2, 6, 7).

* :class:`Constant` — writes a constant value; with ``iterations=1`` it is
  the paper's way of seeding cycles (the two ``Constant(1, …, 1)``
  processes in the Fibonacci graph of Figure 6).
* :class:`Sequence` — consecutive integers; the integer feed of the
  prime sieve (Figure 7), where an iteration limit of 99 makes the
  network "compute all prime numbers less than 100".
* :class:`FromIterable` — drives a network from any Python iterable,
  the idiomatic way to feed test vectors in.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.kpn.process import IterativeProcess
from repro.kpn.streams import OutputStream
from repro.processes.codecs import Codec, LONG, get_codec

__all__ = ["Constant", "Sequence", "FromIterable"]


class Constant(IterativeProcess):
    """Writes ``value`` to its output once per step."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, value: Any, out: OutputStream, iterations: int = 0,
                 codec: "Codec | str" = LONG, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.value = value
        self.out = out
        self.codec = get_codec(codec)
        self.track(out)

    def step(self) -> None:
        self.codec.write(self.out, self.value)


class Sequence(IterativeProcess):
    """Writes ``start, start+stride, start+2*stride, …``."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, out: OutputStream, start: int = 0, stride: int = 1,
                 iterations: int = 0, codec: "Codec | str" = LONG,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.out = out
        self.next_value = start
        self.stride = stride
        self.codec = get_codec(codec)
        self.track(out)

    def step(self) -> None:
        self.codec.write(self.out, self.next_value)
        self.next_value += self.stride


class FromIterable(IterativeProcess):
    """Writes the elements of an iterable, then stops (closing its output)."""

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, out: OutputStream, items: Iterable[Any],
                 codec: "Codec | str" = LONG, name: Optional[str] = None) -> None:
        super().__init__(iterations=0, name=name)
        self.out = out
        self.items = items
        self.codec = get_codec(codec)
        self.track(out)

    def run(self) -> None:  # simple non-step loop: bounded by the iterable
        try:
            self.on_start()
            for item in self.items:
                self.codec.write(self.out, item)
                self.steps_completed += 1
        except Exception as exc:
            from repro.errors import ChannelError
            if not isinstance(exc, ChannelError):
                self.failure = exc
        finally:
            self.on_stop()
