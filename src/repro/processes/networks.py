"""Prebuilt program graphs for every example network in the paper.

Each builder wires one of the paper's figure programs into a supplied (or
fresh) :class:`~repro.kpn.network.Network` and returns a handle with the
pieces tests, examples, and benchmarks need.  The builders mirror the
paper's own construction style (compare :func:`fibonacci` with the code in
Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.kpn.network import Network
from repro.processes.arithmetic import Add, Average, Divide, Equal
from repro.processes.codecs import DOUBLE, LONG
from repro.processes.merges import OrderedMerge, ordered_merge_tree
from repro.processes.reconfig import RecursiveSift, Sift
from repro.processes.routing import Guard, ModuloRouter
from repro.processes.sinks import Collect
from repro.processes.sources import Constant, Sequence
from repro.processes.transforms import Cons, Duplicate, Scale

__all__ = ["BuiltNetwork", "fibonacci", "primes", "newton_sqrt", "hamming",
           "modulo_merge"]


@dataclass
class BuiltNetwork:
    """Handle returned by the graph builders."""

    network: Network
    results: List[Any] = field(default_factory=list)

    def run(self, timeout: Optional[float] = None) -> List[Any]:
        self.network.run(timeout=timeout)
        return self.results


def fibonacci(count: int = 20, network: Optional[Network] = None) -> BuiltNetwork:
    """The Fibonacci network of Figures 2 and 6.

    Stream equations (with ``B = be``, ``F = df``, ``G = gb``)::

        B = cons(1, G)      F = cons(1, B)      G = B + F

    whose least fixed point makes the printed stream ``F`` the Fibonacci
    numbers 1, 1, 2, 3, 5, …  ``count`` limits the Collect process, the
    paper's ``Print(20, fh.getInputStream())``.
    """
    net = network or Network(name="fibonacci")
    ab, be, cd, df, ed, eg, fg, fh, gb = net.channels_n(9, prefix="fib")
    results: List[Any] = []
    net.add(Constant(1, ab.get_output_stream(), iterations=1, name="Constant-ab"))
    net.add(Cons(ab.get_input_stream(), gb.get_input_stream(),
                 be.get_output_stream(), name="Cons-b"))
    net.add(Duplicate(be.get_input_stream(),
                      [ed.get_output_stream(), eg.get_output_stream()],
                      name="Duplicate-e"))
    net.add(Add(eg.get_input_stream(), fg.get_input_stream(),
                gb.get_output_stream(), name="Add-g"))
    net.add(Constant(1, cd.get_output_stream(), iterations=1, name="Constant-cd"))
    net.add(Cons(cd.get_input_stream(), ed.get_input_stream(),
                 df.get_output_stream(), name="Cons-f"))
    net.add(Duplicate(df.get_input_stream(),
                      [fh.get_output_stream(), fg.get_output_stream()],
                      name="Duplicate-f"))
    net.add(Collect(fh.get_input_stream(), results, iterations=count,
                    name="Collect-h"))
    return BuiltNetwork(net, results)


def primes(count: Optional[int] = None, below: Optional[int] = None,
           recursive: bool = False, network: Optional[Network] = None,
           channel_capacity: Optional[int] = None) -> BuiltNetwork:
    """The Sieve of Eratosthenes network of Figure 7.

    Exactly one of ``count`` / ``below`` selects the paper's two
    termination modes (section 3.4):

    * ``count=k`` — "the first k primes": iteration limit on the sink;
      upstream processes are cut off by broken-channel exceptions.
    * ``below=m`` — "all primes less than m": iteration limit on the
      Sequence source; the pipeline drains before terminating.

    ``recursive`` picks the Figure-7 self-replacing Sift; the default is
    the Figure-8 iterative Sift.
    """
    if (count is None) == (below is None):
        raise ValueError("specify exactly one of count= or below=")
    net = network or Network(name="primes")
    feed = net.channel(channel_capacity, name="sieve-feed")
    found = net.channel(channel_capacity, name="sieve-out")
    results: List[Any] = []
    source_iterations = 0 if below is None else max(0, below - 2)
    if below is not None and source_iterations == 0:
        # ``below <= 2``: an empty feed.  Sequence(iterations=0) means
        # *unbounded* (the paper's convention), so use an empty iterable.
        from repro.processes.sources import FromIterable

        net.add(FromIterable(feed.get_output_stream(), [], name="Sequence"))
    else:
        net.add(Sequence(feed.get_output_stream(), start=2,
                         iterations=source_iterations, name="Sequence"))
    sift_cls = RecursiveSift if recursive else Sift
    kwargs = {} if recursive else {"iterations": 0}
    net.add(sift_cls(feed.get_input_stream(), found.get_output_stream(),
                     channel_capacity=channel_capacity, name="Sift",
                     **kwargs))
    net.add(Collect(found.get_input_stream(), results,
                    iterations=count or 0, name="Collect"))
    return BuiltNetwork(net, results)


def newton_sqrt(x: float, initial: Optional[float] = None,
                network: Optional[Network] = None) -> BuiltNetwork:
    """The Newton's-method square-root network of Figure 11.

    Iterates ``r_n = (x / r_{n-1} + r_{n-1}) / 2`` entirely inside the
    network; the Equal process detects convergence ("the root estimate
    stops changing") and the Guard passes exactly one value downstream
    before stopping — the paper's data-dependent termination.
    """
    net = network or Network(name="newton-sqrt")
    r0 = float(initial if initial is not None else (x if x > 0 else 1.0))
    xs, seed, r, rdiv, ravg, req, q, rnext = net.channels_n(8, prefix="newton")
    rn_eq, rn_guard, rn_fb, ctl, out = net.channels_n(5, prefix="newton2")
    results: List[Any] = []
    net.add(Constant(float(x), xs.get_output_stream(), codec=DOUBLE, name="X"))
    net.add(Constant(r0, seed.get_output_stream(), iterations=1, codec=DOUBLE,
                     name="Seed"))
    net.add(Cons(seed.get_input_stream(), rn_fb.get_input_stream(),
                 r.get_output_stream(), name="Cons-r"))
    net.add(Duplicate(r.get_input_stream(),
                      [rdiv.get_output_stream(), ravg.get_output_stream(),
                       req.get_output_stream()], name="Dup-r"))
    net.add(Divide(xs.get_input_stream(), rdiv.get_input_stream(),
                   q.get_output_stream(), codec=DOUBLE, name="Divide"))
    net.add(Average(q.get_input_stream(), ravg.get_input_stream(),
                    rnext.get_output_stream(), codec=DOUBLE, name="Average"))
    net.add(Duplicate(rnext.get_input_stream(),
                      [rn_eq.get_output_stream(), rn_guard.get_output_stream(),
                       rn_fb.get_output_stream()], name="Dup-rnext"))
    net.add(Equal(req.get_input_stream(), rn_eq.get_input_stream(),
                  ctl.get_output_stream(), codec=DOUBLE, name="Equal"))
    net.add(Guard(rn_guard.get_input_stream(), ctl.get_input_stream(),
                  out.get_output_stream(), codec=DOUBLE, stop_after_true=True,
                  name="Guard"))
    net.add(Collect(out.get_input_stream(), results, codec=DOUBLE,
                    name="Collect"))
    return BuiltNetwork(net, results)


def hamming(count: int = 20, network: Optional[Network] = None,
            channel_capacity: Optional[int] = None) -> BuiltNetwork:
    """The unbounded 2^k·3^m·5^n network of Figure 12.

    ``H = cons(1, merge(2·H, 3·H, 5·H))`` — every output element enqueues
    up to three new elements, so "the amount of storage required for the
    channels grows without bound as the program executes".  Run it in a
    bounded network and Parks' scheduler keeps growing the hot channels;
    run it with growth disabled and it deadlocks artificially — both
    behaviours are exercised in the tests.
    """
    net = network or Network(name="hamming")
    cap = channel_capacity
    seed = net.channel(cap, name="ham-seed")
    h = net.channel(cap, name="ham-h")
    hx2, hx3, hx5, hout = (net.channel(cap, name=f"ham-{n}")
                           for n in ("x2", "x3", "x5", "out"))
    s2, s3, s5 = (net.channel(cap, name=f"ham-s{k}") for k in (2, 3, 5))
    merged = net.channel(cap, name="ham-merged")
    results: List[Any] = []
    net.add(Constant(1, seed.get_output_stream(), iterations=1, name="One"))
    net.add(Cons(seed.get_input_stream(), merged.get_input_stream(),
                 h.get_output_stream(), name="Cons-h"))
    net.add(Duplicate(h.get_input_stream(),
                      [hx2.get_output_stream(), hx3.get_output_stream(),
                       hx5.get_output_stream(), hout.get_output_stream()],
                      name="Dup-h"))
    net.add(Scale(hx2.get_input_stream(), s2.get_output_stream(), 2, name="Scale-2"))
    net.add(Scale(hx3.get_input_stream(), s3.get_output_stream(), 3, name="Scale-3"))
    net.add(Scale(hx5.get_input_stream(), s5.get_output_stream(), 5, name="Scale-5"))
    ordered_merge_tree(net,
                       [s2.get_input_stream(), s3.get_input_stream(),
                        s5.get_input_stream()],
                       merged.get_output_stream(), capacity=cap,
                       prefix="ham-merge")
    net.add(Collect(hout.get_input_stream(), results, iterations=count,
                    name="Collect"))
    return BuiltNetwork(net, results)


def modulo_merge(n_values: int, divisor: int = 10,
                 network: Optional[Network] = None,
                 channel_capacity: Optional[int] = None) -> BuiltNetwork:
    """The acyclic-but-deadlock-prone graph of Figure 13.

    source → mod → (upper: multiples of ``divisor``; lower: the rest) →
    ordered merge → sink.  "For every N data elements read, the Modulo
    process produces 1 element on its first output and N−1 elements on
    its second output" — so a small lower-channel capacity stalls the
    router while the merge is blocked on the upper channel: deadlock with
    no directed cycle.
    """
    net = network or Network(name="fig13")
    cap = channel_capacity
    src = net.channel(cap, name="f13-src")
    upper = net.channel(cap, name="f13-upper")
    lower = net.channel(cap, name="f13-lower")
    out = net.channel(cap, name="f13-out")
    results: List[Any] = []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=n_values,
                     name="Source"))
    net.add(ModuloRouter(src.get_input_stream(), upper.get_output_stream(),
                         lower.get_output_stream(), divisor, name="Mod"))
    net.add(OrderedMerge(upper.get_input_stream(), lower.get_input_stream(),
                         out.get_output_stream(), name="Merge"))
    net.add(Collect(out.get_input_stream(), results, name="Sink"))
    return BuiltNetwork(net, results)
