"""Signal-processing processes.

The paper motivates process networks with "signal processing and
scientific computation applications ... embedded signal processing, sonar
beam forming, and image processing" (section 1).  This module provides
the classic streaming DSP blocks as Kahn processes.  All are continuous
stream functions — rate-changing ones included (a downsampler consuming k
inputs per output is still monotonic) — so networks built from them stay
determinate, and each has a denotational kernel registered with the
network compiler.

Blocks
------
Delay           k-sample delay line (prepends initial values)
FIRFilter       finite-impulse-response filter (direct form)
MovingAverage   length-k box filter (a FIRFilter convenience)
Downsample      keep every k-th element
Upsample        insert k−1 fill values after every element
Zip / Unzip     merge two streams into pairs / split pairs round-robin
Window          sliding windows of length k with configurable hop
Accumulate      running reduction (prefix sums by default)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.kpn.process import IterativeProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.processes.codecs import Codec, DOUBLE, LONG, OBJECT, get_codec

__all__ = ["Delay", "FIRFilter", "MovingAverage", "Downsample", "Upsample",
           "Zip", "Unzip", "Window", "Accumulate"]


class Delay(IterativeProcess):
    """k-sample delay: output = initial values, then the input stream.

    The streaming identity ``delay_k(X) = [i_1..i_k] ++ X`` — a Cons with
    a constant head, but element- rather than byte-oriented, and the
    canonical way to seed DSP feedback loops.
    """

    kpn_strict = True
    kpn_rate_balanced = True

    def __init__(self, source: InputStream, out: OutputStream,
                 initial: Sequence[Any], iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.initial = tuple(initial)
        if self.initial:
            # the initial values are written before the source is first
            # read — on a feedback cycle they are the initial tokens
            self.kpn_deferred_inputs = ("source",)
        self.codec = get_codec(codec)
        self.track(source, out)

    def on_start(self) -> None:
        for value in self.initial:
            self.codec.write(self.out, value)

    def step(self) -> None:
        self.codec.write(self.out, self.codec.read(self.source))


class FIRFilter(IterativeProcess):
    """Direct-form FIR: y[n] = Σ coeffs[j] · x[n−j].

    Produces one output per input once the tap line has filled; the first
    ``len(coeffs)−1`` inputs prime the line (standard "valid" mode, so
    output length = input length − taps + 1).
    """

    def __init__(self, source: InputStream, out: OutputStream,
                 coeffs: Sequence[float], iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        if not coeffs:
            raise ValueError("FIRFilter needs at least one coefficient")
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.coeffs = tuple(coeffs)
        self.codec = get_codec(codec)
        self._taps: deque = deque(maxlen=len(self.coeffs))
        self.track(source, out)

    def step(self) -> None:
        self._taps.append(self.codec.read(self.source))
        if len(self._taps) == len(self.coeffs):
            acc = sum(c * x for c, x in zip(self.coeffs, reversed(self._taps)))
            self.codec.write(self.out, acc)

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_taps"] = deque(self._taps, maxlen=len(self.coeffs))
        return state


class MovingAverage(FIRFilter):
    """Length-k box filter: the uniform FIR."""

    def __init__(self, source: InputStream, out: OutputStream, k: int,
                 iterations: int = 0, codec: "Codec | str" = DOUBLE,
                 name: Optional[str] = None) -> None:
        if k < 1:
            raise ValueError("window length must be >= 1")
        super().__init__(source, out, [1.0 / k] * k, iterations=iterations,
                         codec=codec, name=name)


class Downsample(IterativeProcess):
    """Keep every k-th element (the first of each group of k)."""

    def __init__(self, source: InputStream, out: OutputStream, k: int,
                 iterations: int = 0, codec: "Codec | str" = DOUBLE,
                 name: Optional[str] = None) -> None:
        if k < 1:
            raise ValueError("decimation factor must be >= 1")
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.k = k
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self) -> None:
        keep = self.codec.read(self.source)
        self.codec.write(self.out, keep)
        for _ in range(self.k - 1):
            self.codec.read(self.source)  # EOF mid-group ends the process


class Upsample(IterativeProcess):
    """Emit each element followed by k−1 copies of ``fill``."""

    def __init__(self, source: InputStream, out: OutputStream, k: int,
                 fill: Any = 0.0, iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        if k < 1:
            raise ValueError("expansion factor must be >= 1")
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.k = k
        self.fill = fill
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self) -> None:
        self.codec.write(self.out, self.codec.read(self.source))
        for _ in range(self.k - 1):
            self.codec.write(self.out, self.fill)


class Zip(IterativeProcess):
    """Pairs elements of two streams: out = ((a1,b1), (a2,b2), …).

    Output uses the object codec (tuples); inputs share ``codec``.
    """

    def __init__(self, left: InputStream, right: InputStream,
                 out: OutputStream, iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.left = left
        self.right = right
        self.out = out
        self.codec = get_codec(codec)
        self.track(left, right, out)

    def step(self) -> None:
        a = self.codec.read(self.left)
        b = self.codec.read(self.right)
        OBJECT.write(self.out, (a, b))


class Unzip(IterativeProcess):
    """Round-robin split: even-indexed elements left, odd-indexed right."""

    def __init__(self, source: InputStream, left_out: OutputStream,
                 right_out: OutputStream, iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.left_out = left_out
        self.right_out = right_out
        self.codec = get_codec(codec)
        self.track(source, left_out, right_out)

    def step(self) -> None:
        self.codec.write(self.left_out, self.codec.read(self.source))
        self.codec.write(self.right_out, self.codec.read(self.source))


class Window(IterativeProcess):
    """Sliding windows: tuples of length k advancing by ``hop``."""

    def __init__(self, source: InputStream, out: OutputStream, k: int,
                 hop: int = 1, iterations: int = 0,
                 codec: "Codec | str" = DOUBLE, name: Optional[str] = None) -> None:
        if k < 1 or hop < 1:
            raise ValueError("window length and hop must be >= 1")
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.k = k
        self.hop = hop
        self.codec = get_codec(codec)
        self._buf: deque = deque(maxlen=k)
        self.track(source, out)

    def step(self) -> None:
        needed = self.k if not self._buf else self.hop
        for _ in range(needed):
            self._buf.append(self.codec.read(self.source))
        if len(self._buf) == self.k:
            OBJECT.write(self.out, tuple(self._buf))

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_buf"] = deque(self._buf, maxlen=self.k)
        return state


class Accumulate(IterativeProcess):
    """Running reduction: out[n] = fn(out[n−1], in[n]); prefix sums by
    default."""

    def __init__(self, source: InputStream, out: OutputStream,
                 fn: Callable[[Any, Any], Any] = None, initial: Any = 0,
                 iterations: int = 0, codec: "Codec | str" = DOUBLE,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.fn = fn
        self.state = initial
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self) -> None:
        value = self.codec.read(self.source)
        self.state = (self.state + value) if self.fn is None \
            else self.fn(self.state, value)
        self.codec.write(self.out, self.state)


# ---------------------------------------------------------------------------
# denotational kernels for the compiler
# ---------------------------------------------------------------------------

def _register_dsp_kernels() -> None:
    from repro.semantics.closed import CStream
    from repro.semantics.compile import register_kernel

    @register_kernel(Delay)
    def _delay(p, ctx):
        initial = p.initial

        def kernel(inputs):
            (s,) = inputs
            return (CStream(initial + s.elems, s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])

    @register_kernel(FIRFilter)
    def _fir(p, ctx):
        coeffs = p.coeffs

        def kernel(inputs):
            (s,) = inputs
            k = len(coeffs)
            out = tuple(
                sum(c * s.elems[i - j] for j, c in enumerate(coeffs))
                for i in range(k - 1, len(s.elems)))
            return (CStream(out, s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])

    @register_kernel(Downsample)
    def _down(p, ctx):
        k = p.k

        def kernel(inputs):
            (s,) = inputs
            out = s.elems[::k]
            # the last kept element is only safe once its whole group has
            # arrived (or the stream closed)
            if not s.closed and len(s.elems) % k != 0:
                pass  # partial group: its head was already emitted; fine
            return (CStream(out, s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])

    @register_kernel(Upsample)
    def _up(p, ctx):
        k, fill = p.k, p.fill

        def kernel(inputs):
            (s,) = inputs
            out = []
            for x in s.elems:
                out.append(x)
                out.extend([fill] * (k - 1))
            return (CStream(tuple(out), s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])

    @register_kernel(Zip)
    def _zip(p, ctx):
        from repro.semantics.closed import ck_binary

        ctx.node(p, ck_binary(lambda a, b: (a, b)), [p.left, p.right], [p.out])

    @register_kernel(Unzip)
    def _unzip(p, ctx):
        def kernel(inputs):
            (s,) = inputs
            left = s.elems[0::2]
            right = s.elems[1::2]
            return (CStream(left, s.closed), CStream(right, s.closed))

        ctx.node(p, kernel, [p.source], [p.left_out, p.right_out])

    @register_kernel(Window)
    def _window(p, ctx):
        k, hop = p.k, p.hop

        def kernel(inputs):
            (s,) = inputs
            out = tuple(tuple(s.elems[i:i + k])
                        for i in range(0, len(s.elems) - k + 1, hop))
            return (CStream(out, s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])

    @register_kernel(Accumulate)
    def _acc(p, ctx):
        fn = p.fn
        initial = p.state

        def kernel(inputs):
            (s,) = inputs
            out = []
            acc = initial
            for x in s.elems:
                acc = (acc + x) if fn is None else fn(acc, x)
                out.append(acc)
            return (CStream(tuple(out), s.closed),)

        ctx.node(p, kernel, [p.source], [p.out])


_register_dsp_kernels()
