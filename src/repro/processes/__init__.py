"""Standard process library: every named process from the paper's figures.

Byte-level (type-independent): Cons, SelfRemovingCons, Duplicate, Identity.
Typed (codec-parameterized): Constant, Sequence, FromIterable, Print,
Collect, Discard, Scale, MapProcess, Add/Subtract/Multiply/Divide/Average/
Equal, ModuloFilter, OrderedMerge, Guard, ModuloRouter, Scatter, Gather,
Direct, Turnstile, Select, Sift, RecursiveSift.

:mod:`~repro.processes.networks` assembles them into the paper's example
graphs (Fibonacci, sieve, Newton square root, Hamming, Figure 13).
"""

from repro.processes.arithmetic import (Add, Average, BinaryOp, Divide, Equal,
                                        ModuloFilter, Multiply, Subtract)
from repro.processes.dsp import (Accumulate, Delay, Downsample, FIRFilter,
                                 MovingAverage, Unzip, Upsample, Window, Zip)
from repro.processes.codecs import (BOOL, Codec, DOUBLE, INT, LONG, OBJECT,
                                    ObjectCodec, StructCodec, get_codec)
from repro.processes.merges import OrderedMerge, ordered_merge_tree
from repro.processes.networks import (BuiltNetwork, fibonacci, hamming,
                                      modulo_merge, newton_sqrt, primes)
from repro.processes.reconfig import RecursiveSift, Sift
from repro.processes.routing import (Direct, Gather, Guard, ModuloRouter,
                                     Scatter, Select, Turnstile)
from repro.processes.sinks import Collect, Discard, Print
from repro.processes.sources import Constant, FromIterable, Sequence
from repro.processes.transforms import (Cons, Duplicate, Identity, MapProcess,
                                        Scale, SelfRemovingCons)

__all__ = [
    "Add", "Average", "BinaryOp", "Divide", "Equal", "ModuloFilter",
    "Multiply", "Subtract",
    "BOOL", "Codec", "DOUBLE", "INT", "LONG", "OBJECT", "ObjectCodec",
    "StructCodec", "get_codec",
    "Accumulate", "Delay", "Downsample", "FIRFilter", "MovingAverage",
    "Unzip", "Upsample", "Window", "Zip",
    "OrderedMerge", "ordered_merge_tree",
    "BuiltNetwork", "fibonacci", "hamming", "modulo_merge", "newton_sqrt",
    "primes",
    "RecursiveSift", "Sift",
    "Direct", "Gather", "Guard", "ModuloRouter", "Scatter", "Select",
    "Turnstile",
    "Collect", "Discard", "Print",
    "Constant", "FromIterable", "Sequence",
    "Cons", "Duplicate", "Identity", "MapProcess", "Scale", "SelfRemovingCons",
]
